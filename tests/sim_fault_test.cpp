// Fault-injection simulator tests: bit-identity of the healthy path,
// failover routing, availability accounting, cold restarts, and the
// degraded-mode metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "src/fault/fault_schedule.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/placement/fixed_split.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using cdn::fault::FaultSchedule;
using cdn::placement::greedy_global;
using cdn::placement::hybrid_greedy;
using cdn::placement::pure_caching;
using cdn::sim::simulate;
using cdn::sim::SimulationConfig;
using cdn::sim::SimulationReport;
using cdn::test::TestSystem;

SimulationConfig quick_sim(std::uint64_t requests = 200'000) {
  SimulationConfig sc;
  sc.total_requests = requests;
  sc.warmup_fraction = 0.3;
  sc.seed = 17;
  return sc;
}

/// Every field two identically-configured runs must agree on.
void expect_identical(const SimulationReport& a, const SimulationReport& b) {
  EXPECT_EQ(a.measured_requests, b.measured_requests);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.mean_cost_hops, b.mean_cost_hops);
  EXPECT_EQ(a.local_ratio, b.local_ratio);
  EXPECT_EQ(a.cache_hit_ratio, b.cache_hit_ratio);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.failover_requests, b.failover_requests);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.cold_restarts, b.cold_restarts);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.slo_violation_fraction, b.slo_violation_fraction);
  ASSERT_EQ(a.latency_cdf.count(), b.latency_cdf.count());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.latency_cdf.quantile(q), b.latency_cdf.quantile(q));
  }
  EXPECT_EQ(a.cache_totals.hits(), b.cache_totals.hits());
  EXPECT_EQ(a.cache_totals.misses(), b.cache_totals.misses());
  EXPECT_EQ(a.cache_totals.admissions(), b.cache_totals.admissions());
  EXPECT_EQ(a.cache_totals.evictions(), b.cache_totals.evictions());
}

TEST(SimFaultTest, EmptyScheduleIsBitIdenticalToHealthyRun) {
  const auto t = TestSystem::make();
  const auto placement = hybrid_greedy(*t.system);

  const auto healthy = simulate(*t.system, placement, quick_sim());

  FaultSchedule empty;
  auto cfg = quick_sim();
  cfg.faults = &empty;  // non-null but empty must change NOTHING
  const auto with_empty = simulate(*t.system, placement, cfg);

  expect_identical(healthy, with_empty);
  EXPECT_EQ(with_empty.availability, 1.0);
  EXPECT_EQ(with_empty.failed_requests, 0u);
  EXPECT_EQ(with_empty.fault_transitions, 0u);
}

TEST(SimFaultTest, SameSeedAndScheduleIsDeterministic) {
  const auto t = TestSystem::make();
  const auto placement = hybrid_greedy(*t.system);
  FaultSchedule faults;
  faults.add_server_outage(1, 40'000, 120'000);
  faults.add_origin_outage(0, 60'000, 90'000);
  faults.add_link_degradation(2, 50'000, 150'000, 4.0);
  faults.add_demand_surge(7, 80'000, 160'000, 10.0);

  auto cfg = quick_sim();
  cfg.faults = &faults;
  cfg.slo_ms = 30.0;
  const auto a = simulate(*t.system, placement, cfg);
  const auto b = simulate(*t.system, placement, cfg);
  expect_identical(a, b);
  EXPECT_EQ(a.fault_transitions, b.fault_transitions);
}

TEST(SimFaultTest, OutageTriggersFailoverNotFailure) {
  // One server down for the whole measured window; the origins stay up,
  // so every request still completes — via failover, at a retry penalty.
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  FaultSchedule faults;
  faults.add_server_outage(0, 0, 200'000);

  auto cfg = quick_sim();
  cfg.faults = &faults;
  const auto report = simulate(*t.system, placement, cfg);

  EXPECT_GT(report.failover_requests, 0u);
  EXPECT_GE(report.retry_attempts, report.failover_requests);
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_EQ(report.availability, 1.0);

  const auto healthy = simulate(*t.system, placement, quick_sim());
  EXPECT_GT(report.mean_latency_ms, healthy.mean_latency_ms);
}

TEST(SimFaultTest, AllCopiesDownMeansFailure) {
  // Pure caching: the origin is the only durable copy.  Server 0 AND every
  // origin down => server 0's requests cannot be served at all.
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  FaultSchedule faults;
  faults.add_server_outage(0, 100'000, 200'000);
  for (std::uint32_t j = 0; j < t.system->site_count(); ++j) {
    faults.add_origin_outage(j, 100'000, 200'000);
  }

  auto cfg = quick_sim();
  cfg.faults = &faults;
  const auto report = simulate(*t.system, placement, cfg);

  EXPECT_GT(report.failed_requests, 0u);
  EXPECT_LT(report.availability, 1.0);
  EXPECT_NEAR(report.availability,
              1.0 - static_cast<double>(report.failed_requests) /
                        static_cast<double>(report.measured_requests),
              1e-12);
  // Failed requests never land in the latency CDF.
  EXPECT_EQ(report.latency_cdf.count(),
            report.measured_requests - report.failed_requests);
}

TEST(SimFaultTest, ReplicasKeepServiceUpWhenOriginDies) {
  // Same outage, but with replicas: greedy-global keeps live copies on
  // the surviving servers, so far fewer requests are lost.
  const auto t = TestSystem::make();
  FaultSchedule faults;
  faults.add_server_outage(0, 100'000, 200'000);
  for (std::uint32_t j = 0; j < t.system->site_count(); ++j) {
    faults.add_origin_outage(j, 100'000, 200'000);
  }
  auto cfg = quick_sim();
  cfg.faults = &faults;

  const auto cach = simulate(*t.system, pure_caching(*t.system), cfg);
  const auto repl = simulate(*t.system, greedy_global(*t.system), cfg);
  EXPECT_GT(repl.availability, cach.availability);
}

TEST(SimFaultTest, NoRequestServedByDownServer) {
  const auto t = TestSystem::make();
  const auto placement = hybrid_greedy(*t.system);
  FaultSchedule faults;
  faults.add_server_outage(1, 30'000, 170'000);
  faults.add_server_outage(3, 90'000, 140'000);

  auto cfg = quick_sim();
  cfg.faults = &faults;
  cdn::obs::TraceSink sink(1.0);  // record EVERY request
  cfg.trace_sink = &sink;
  (void)simulate(*t.system, placement, cfg);

  ASSERT_GT(sink.recorded(), 0u);
  auto down = [&](std::uint64_t when, std::int32_t server) {
    for (const auto& o : faults.server_outages()) {
      if (static_cast<std::int32_t>(o.target) == server && when >= o.begin &&
          when < o.end) {
        return true;
      }
    }
    return false;
  };
  for (const auto& e : sink.events()) {
    if (e.served_by < 0) continue;  // primary (-1) or failed (-2)
    EXPECT_FALSE(down(e.t, e.served_by))
        << "request " << e.t << " served by down server " << e.served_by;
  }
}

TEST(SimFaultTest, RecoveryRestartsWithColdCache) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  FaultSchedule faults;
  faults.add_server_outage(2, 80'000, 100'000);
  faults.add_server_outage(2, 120'000, 140'000);

  auto cfg = quick_sim();
  cfg.warmup_fraction = 0.1;  // measure across both recoveries
  cfg.faults = &faults;
  const auto report = simulate(*t.system, placement, cfg);
  EXPECT_EQ(report.cold_restarts, 2u);

  // The cold restarts cost hits: the same stream with no faults hits more.
  auto healthy_cfg = quick_sim();
  healthy_cfg.warmup_fraction = 0.1;
  const auto healthy = simulate(*t.system, placement, healthy_cfg);
  EXPECT_LT(report.cache_hit_ratio, healthy.cache_hit_ratio);
}

TEST(SimFaultTest, SloViolationFractionTracksLatency) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);

  // Healthy run, SLO far above every latency: zero violations.
  auto cfg = quick_sim();
  cfg.slo_ms = 1e9;
  auto report = simulate(*t.system, placement, cfg);
  EXPECT_EQ(report.slo_violation_fraction, 0.0);

  // SLO below every latency: everything violates.
  cfg.slo_ms = 1e-9;
  report = simulate(*t.system, placement, cfg);
  EXPECT_EQ(report.slo_violation_fraction, 1.0);

  // Disabled by default.
  report = simulate(*t.system, placement, quick_sim());
  EXPECT_EQ(report.slo_violation_fraction, 0.0);
}

TEST(SimFaultTest, LinkDegradationStretchesRedirectLatency) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  FaultSchedule faults;
  // Slow every server's uplink 8x for the whole run; misses pay it.
  for (std::uint32_t s = 0; s < t.system->server_count(); ++s) {
    faults.add_link_degradation(s, 0, 200'000, 8.0);
  }
  auto cfg = quick_sim();
  cfg.faults = &faults;
  const auto degraded = simulate(*t.system, placement, cfg);
  const auto healthy = simulate(*t.system, placement, quick_sim());
  EXPECT_GT(degraded.mean_latency_ms, healthy.mean_latency_ms);
  EXPECT_EQ(degraded.failed_requests, 0u);
}

TEST(SimFaultTest, DemandSurgeShiftsTheRequestMix) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  const std::uint32_t hot = 0;  // a low-popularity site
  FaultSchedule faults;
  faults.add_demand_surge(hot, 0, 200'000, 50.0);

  auto count_site = [&](const SimulationConfig& cfg) {
    cdn::obs::TraceSink sink(1.0);
    auto c = cfg;
    c.trace_sink = &sink;
    (void)simulate(*t.system, placement, c);
    std::uint64_t n = 0;
    for (const auto& e : sink.events()) n += e.site == hot;
    return std::make_pair(n, sink.recorded());
  };

  auto cfg = quick_sim();
  cfg.faults = &faults;
  const auto [surged, surged_total] = count_site(cfg);
  const auto [base, base_total] = count_site(quick_sim());
  const double surged_share =
      static_cast<double>(surged) / static_cast<double>(surged_total);
  const double base_share =
      static_cast<double>(base) / static_cast<double>(base_total);
  EXPECT_GT(surged_share, 2.0 * base_share);
}

TEST(SimFaultTest, FaultMetricsLandInTheRegistry) {
  const auto t = TestSystem::make();
  const auto placement = hybrid_greedy(*t.system);
  FaultSchedule faults;
  faults.add_server_outage(0, 50'000, 150'000);

  auto cfg = quick_sim();
  cfg.faults = &faults;
  cfg.slo_ms = 30.0;
  cdn::obs::Registry registry;
  cfg.metrics = &registry;
  const auto report = simulate(*t.system, placement, cfg);

  EXPECT_EQ(registry.gauge("sim/availability").value(), report.availability);
  EXPECT_EQ(registry.counter("sim/fault/failover").value(),
            report.failover_requests);
  EXPECT_EQ(registry.counter("sim/fault/cold_restarts").value(),
            report.cold_restarts);
  EXPECT_EQ(registry.gauge("sim/slo_violation_fraction").value(),
            report.slo_violation_fraction);
}

// --- SimulationConfig::validate (satellite) ---

TEST(SimFaultTest, ValidateRejectsBadConfigs) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);

  auto cfg = quick_sim();
  cfg.warmup_fraction = -0.1;
  EXPECT_THROW(simulate(*t.system, placement, cfg), cdn::PreconditionError);

  cfg = quick_sim();
  cfg.warmup_fraction = 1.0;
  EXPECT_THROW(simulate(*t.system, placement, cfg), cdn::PreconditionError);

  cfg = quick_sim();
  cfg.metrics_windows = 0;
  EXPECT_THROW(simulate(*t.system, placement, cfg), cdn::PreconditionError);

  cfg = quick_sim();
  cfg.total_requests = 0;
  EXPECT_THROW(simulate(*t.system, placement, cfg), cdn::PreconditionError);

  cfg = quick_sim();
  cfg.slo_ms = -1.0;
  EXPECT_THROW(simulate(*t.system, placement, cfg), cdn::PreconditionError);

  cfg = quick_sim();
  cfg.latency.retry_timeout_ms = -5.0;
  EXPECT_THROW(simulate(*t.system, placement, cfg), cdn::PreconditionError);

  // A recorded trace must be non-empty.
  cfg = quick_sim();
  cdn::workload::RecordedTrace empty_trace;
  cfg.trace = &empty_trace;
  EXPECT_THROW(simulate(*t.system, placement, cfg), cdn::PreconditionError);
}

}  // namespace
