// EventLoop: timers, fd readiness, cancellation, wakeup, deferred removal.
// Every test is bounded — nothing here waits longer than a few hundred ms.

#include "src/net/event_loop.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include "src/net/socket.h"
#include "src/util/error.h"

namespace cdn::net {
namespace {

using namespace std::chrono_literals;

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  const auto now = Clock::now();
  loop.add_timer(now + 30ms, [&] { order.push_back(3); });
  loop.add_timer(now + 10ms, [&] { order.push_back(1); });
  loop.add_timer(now + 20ms, [&] {
    order.push_back(2);
  });
  while (loop.pending_timers() > 0) loop.run_once(100ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  bool fired = false;
  const TimerId id = loop.add_timer_after(10ms, [&] { fired = true; });
  loop.add_timer_after(20ms, [] {});
  loop.cancel_timer(id);
  while (loop.pending_timers() > 0) loop.run_once(100ms);
  EXPECT_FALSE(fired);
}

TEST(EventLoop, TimerMayReArmItself) {
  EventLoop loop;
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) loop.add_timer_after(5ms, tick);
  };
  loop.add_timer_after(5ms, tick);
  const auto deadline = Clock::now() + 2s;
  while (loop.pending_timers() > 0 && Clock::now() < deadline) {
    loop.run_once(50ms);
  }
  EXPECT_EQ(fires, 3);
}

TEST(EventLoop, FdReadabilityDispatches) {
  EventLoop loop;
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  ASSERT_TRUE(set_nonblocking_cloexec(pipe_fds[0]));
  Fd rd(pipe_fds[0]), wr(pipe_fds[1]);

  std::string got;
  loop.add_fd(rd.get(), kReadable, [&](std::uint32_t events) {
    ASSERT_TRUE(events & kReadable);
    char buf[16];
    const IoResult r = read_some(rd.get(), buf, sizeof(buf));
    ASSERT_EQ(r.status, IoStatus::kOk);
    got.assign(buf, r.bytes);
    loop.remove_fd(rd.get());  // removal from inside the callback
  });
  ASSERT_EQ(::write(wr.get(), "hi", 2), 2);
  const auto deadline = Clock::now() + 2s;
  while (loop.fd_count() > 0 && Clock::now() < deadline) loop.run_once(50ms);
  EXPECT_EQ(got, "hi");
  EXPECT_FALSE(loop.has_fd(rd.get()));
}

TEST(EventLoop, WakeupFromAnotherThreadInvokesHandler) {
  EventLoop loop;
  bool woken = false;
  loop.set_wakeup_handler([&] {
    woken = true;
    loop.stop();
  });
  // Keep the loop alive with a far-out timer.
  loop.add_timer_after(10s, [] {});
  std::thread t([&] {
    std::this_thread::sleep_for(20ms);
    loop.wakeup();
  });
  loop.run();
  t.join();
  EXPECT_TRUE(woken);
}

TEST(EventLoop, RunReturnsWhenNothingRegistered) {
  EventLoop loop;
  loop.add_timer_after(5ms, [] {});
  loop.run();  // must not hang once the only timer fired
  SUCCEED();
}

TEST(EventLoop, DuplicateFdRegistrationThrows) {
  EventLoop loop;
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  Fd rd(pipe_fds[0]), wr(pipe_fds[1]);
  loop.add_fd(rd.get(), kReadable, [](std::uint32_t) {});
  EXPECT_THROW(loop.add_fd(rd.get(), kReadable, [](std::uint32_t) {}),
               PreconditionError);
  loop.remove_fd(rd.get());
}

TEST(EventLoop, FdNumberReusedWithinOnePassIsReclaimed) {
  // A callback closes an fd (deferred removal) and a new socket created in
  // the same dispatch pass gets the same number; add_fd must reclaim the
  // stale entry instead of throwing.  This is exactly what a race retry
  // does: retire the failed attempt, then immediately connect again.
  EventLoop loop;
  int first[2];
  ASSERT_EQ(::pipe(first), 0);
  bool second_fired = false;
  int second_write = -1;
  loop.add_fd(first[0], kReadable, [](std::uint32_t) {});
  loop.add_timer_after(5ms, [&] {
    loop.remove_fd(first[0]);
    ASSERT_EQ(::close(first[0]), 0);
    ASSERT_EQ(::close(first[1]), 0);
    int second[2];
    ASSERT_EQ(::pipe(second), 0);  // reuses the just-closed numbers
    ASSERT_EQ(second[0], first[0]);
    ASSERT_TRUE(set_nonblocking_cloexec(second[0]));
    second_write = second[1];
    loop.add_fd(second[0], kReadable, [&](std::uint32_t) {
      second_fired = true;
      loop.remove_fd(second[0]);
      ::close(second[0]);
    });
    ASSERT_EQ(::write(second_write, "x", 1), 1);
  });
  const auto deadline = Clock::now() + 2s;
  while (loop.fd_count() > 0 && Clock::now() < deadline) loop.run_once(50ms);
  EXPECT_TRUE(second_fired);
  if (second_write >= 0) ::close(second_write);
}

TEST(EventLoop, StaleReventsNotDeliveredToReusedFdNumber) {
  // poll() captures readiness by fd number; a handler earlier in the same
  // pass then closes that fd and a new socket reclaims the number.  The
  // stale POLLIN from the dead registration must not reach the new one —
  // a racer would read it as "connect resolved" while still in flight.
  EventLoop loop;
  int first[2];
  ASSERT_EQ(::pipe(first), 0);
  ASSERT_TRUE(set_nonblocking_cloexec(first[0]));
  bool first_fired = false;
  loop.add_fd(first[0], kReadable, [&](std::uint32_t) { first_fired = true; });
  ASSERT_EQ(::write(first[1], "x", 1), 1);  // readable at poll time

  int second[2] = {-1, -1};
  int second_events = 0;
  // The wakeup handler runs before fd dispatch within the pass.
  loop.set_wakeup_handler([&] {
    loop.remove_fd(first[0]);
    ASSERT_EQ(::close(first[0]), 0);
    ASSERT_EQ(::close(first[1]), 0);
    ASSERT_EQ(::pipe(second), 0);
    ASSERT_EQ(second[0], first[0]);  // number reclaimed
    ASSERT_TRUE(set_nonblocking_cloexec(second[0]));
    loop.add_fd(second[0], kReadable, [&](std::uint32_t) { ++second_events; });
  });
  loop.wakeup();
  loop.run_once(100ms);
  EXPECT_FALSE(first_fired);
  EXPECT_EQ(second_events, 0);  // nothing written to the new pipe yet

  ASSERT_EQ(::write(second[1], "y", 1), 1);
  const auto deadline = Clock::now() + 2s;
  while (second_events == 0 && Clock::now() < deadline) loop.run_once(50ms);
  EXPECT_EQ(second_events, 1);
  loop.remove_fd(second[0]);
  ::close(second[0]);
  ::close(second[1]);
}

TEST(EventLoop, SetInterestUnknownFdThrows) {
  EventLoop loop;
  EXPECT_THROW(loop.set_interest(42, kReadable), PreconditionError);
}

}  // namespace
}  // namespace cdn::net
