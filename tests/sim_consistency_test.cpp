// Unit tests for the cache-consistency substrate (Section 3.3 mechanisms).

#include <gtest/gtest.h>

#include "src/placement/fixed_split.h"
#include "src/placement/greedy_global.h"
#include "src/sim/consistency_sim.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::test::TestSystem;

TEST(ModificationProcessTest, DeterministicReplay) {
  sim::ModificationProcess a(100.0, 1000.0, 42);
  sim::ModificationProcess b(100.0, 1000.0, 42);
  for (workload::ObjectId obj : {1ull, 99ull, 123456ull}) {
    for (double now : {50.0, 500.0, 5000.0, 50000.0}) {
      EXPECT_DOUBLE_EQ(a.last_modification(obj, now),
                       b.last_modification(obj, now));
    }
  }
}

TEST(ModificationProcessTest, LastModificationIsMonotoneAndBounded) {
  sim::ModificationProcess proc(10.0, 100.0, 7);
  double prev = -1.0;
  for (double now = 0.0; now < 10000.0; now += 37.0) {
    const double last = proc.last_modification(5, now);
    EXPECT_LE(last, now);
    EXPECT_GE(last, prev);
    prev = last;
  }
}

TEST(ModificationProcessTest, MeanIntervalInConfiguredRange) {
  sim::ModificationProcess proc(3600.0, 86400.0, 11);
  for (workload::ObjectId obj = 0; obj < 500; ++obj) {
    const double m = proc.mean_interval(obj);
    EXPECT_GE(m, 3600.0);
    EXPECT_LE(m, 86400.0);
  }
}

TEST(ModificationProcessTest, UpdateRateMatchesMeanInterval) {
  sim::ModificationProcess proc(50.0, 50.0, 13);  // fixed mean 50
  // Count updates in [0, T] by stepping through last_modification.
  const double horizon = 100000.0;
  int updates = 0;
  double t = 0.0;
  double last = 0.0;
  while (t < horizon) {
    const double lm = proc.last_modification(1, t);
    if (lm > last) {
      ++updates;
      last = lm;
    }
    t += 10.0;
  }
  EXPECT_NEAR(static_cast<double>(updates), horizon / 50.0,
              0.15 * horizon / 50.0);
}

TEST(ModificationProcessTest, RejectsBadIntervals) {
  EXPECT_THROW(sim::ModificationProcess(0.0, 10.0, 1),
               cdn::PreconditionError);
  EXPECT_THROW(sim::ModificationProcess(20.0, 10.0, 1),
               cdn::PreconditionError);
}

TEST(FreshnessTableTest, TracksFetchTimes) {
  sim::FreshnessTable table;
  EXPECT_LT(table.fetch_time(1), 0.0);  // -inf for unknown
  table.on_fetch(1, 42.0);
  EXPECT_DOUBLE_EQ(table.fetch_time(1), 42.0);
  table.on_fetch(1, 50.0);
  EXPECT_DOUBLE_EQ(table.fetch_time(1), 50.0);
  table.erase(1);
  EXPECT_LT(table.fetch_time(1), 0.0);
}

class ConsistencySimTest : public ::testing::Test {
 protected:
  static sim::SimulationConfig quick() {
    sim::SimulationConfig cfg;
    cfg.total_requests = 400'000;
    cfg.seed = 23;
    return cfg;
  }
};

TEST_F(ConsistencySimTest, BernoulliDelegatesToBaseSimulator) {
  const auto t = TestSystem::make();
  const auto placement = placement::pure_caching(*t.system);
  sim::ConsistencyConfig cc;
  cc.mode = sim::ConsistencyMode::kBernoulli;
  const auto with = sim::simulate_with_consistency(*t.system, placement,
                                                   quick(), cc);
  const auto base = sim::simulate(*t.system, placement, quick());
  EXPECT_DOUBLE_EQ(with.base.mean_latency_ms, base.mean_latency_ms);
  EXPECT_EQ(with.stale_served, 0u);
}

TEST_F(ConsistencySimTest, InvalidationNeverServesStale) {
  const auto t = TestSystem::make();
  const auto placement = placement::pure_caching(*t.system);
  sim::ConsistencyConfig cc;
  cc.mode = sim::ConsistencyMode::kInvalidation;
  cc.min_mean_update_interval = 100.0;  // very churny objects
  cc.max_mean_update_interval = 1000.0;
  const auto report = sim::simulate_with_consistency(*t.system, placement,
                                                     quick(), cc);
  EXPECT_EQ(report.stale_served, 0u);
  EXPECT_GT(report.invalidation_misses, 0u);
}

TEST_F(ConsistencySimTest, TtlServesStaleUnderChurn) {
  const auto t = TestSystem::make();
  const auto placement = placement::pure_caching(*t.system);
  sim::ConsistencyConfig cc;
  cc.mode = sim::ConsistencyMode::kTtl;
  cc.ttl = 1e6;  // effectively never revalidate
  cc.min_mean_update_interval = 100.0;
  cc.max_mean_update_interval = 1000.0;
  const auto report = sim::simulate_with_consistency(*t.system, placement,
                                                     quick(), cc);
  EXPECT_GT(report.stale_served, 0u);
  EXPECT_GT(report.stale_ratio(), 0.0);
}

TEST_F(ConsistencySimTest, ShortTtlEliminatesStalenessButCostsLatency) {
  const auto t = TestSystem::make();
  const auto placement = placement::pure_caching(*t.system);
  sim::ConsistencyConfig lazy;
  lazy.mode = sim::ConsistencyMode::kTtl;
  lazy.ttl = 1e7;
  lazy.min_mean_update_interval = 200.0;
  lazy.max_mean_update_interval = 2000.0;
  sim::ConsistencyConfig eager = lazy;
  eager.ttl = 10.0;  // ~1k requests of freshness at 0.01 s/request
  const auto lazy_report =
      sim::simulate_with_consistency(*t.system, placement, quick(), lazy);
  const auto eager_report =
      sim::simulate_with_consistency(*t.system, placement, quick(), eager);
  EXPECT_LT(eager_report.stale_ratio(), lazy_report.stale_ratio());
  EXPECT_GT(eager_report.validations, lazy_report.validations);
  EXPECT_GT(eager_report.base.mean_latency_ms,
            lazy_report.base.mean_latency_ms);
}

TEST_F(ConsistencySimTest, SlowUpdatesMakeStrongConsistencyCheap) {
  // [22]: modification intervals of 1-24h make the stale probability tiny;
  // invalidation misses should be rare relative to total requests.
  const auto t = TestSystem::make();
  const auto placement = placement::pure_caching(*t.system);
  sim::ConsistencyConfig cc;
  cc.mode = sim::ConsistencyMode::kInvalidation;  // defaults: 1h..24h
  const auto report = sim::simulate_with_consistency(*t.system, placement,
                                                     quick(), cc);
  EXPECT_LT(static_cast<double>(report.invalidation_misses) /
                static_cast<double>(report.base.measured_requests),
            0.02);
}

TEST_F(ConsistencySimTest, ReplicatedSitesUnaffectedByChurn) {
  // 100%-storage replication: everything local regardless of updates.
  const auto t = TestSystem::make(2, 2, 1, 50, 1.0);
  const auto placement = placement::greedy_global(*t.system);
  sim::ConsistencyConfig cc;
  cc.mode = sim::ConsistencyMode::kInvalidation;
  cc.min_mean_update_interval = 10.0;
  cc.max_mean_update_interval = 20.0;
  const auto report = sim::simulate_with_consistency(*t.system, placement,
                                                     quick(), cc);
  EXPECT_DOUBLE_EQ(report.base.local_ratio, 1.0);
  EXPECT_EQ(report.invalidation_misses, 0u);
}

TEST_F(ConsistencySimTest, RejectsBadConfig) {
  const auto t = TestSystem::make();
  const auto placement = placement::pure_caching(*t.system);
  sim::ConsistencyConfig cc;
  cc.mode = sim::ConsistencyMode::kTtl;
  cc.ttl = 0.0;
  EXPECT_THROW(
      sim::simulate_with_consistency(*t.system, placement, quick(), cc),
      cdn::PreconditionError);
  cc = {};
  cc.mode = sim::ConsistencyMode::kTtl;
  cc.seconds_per_request = 0.0;
  EXPECT_THROW(
      sim::simulate_with_consistency(*t.system, placement, quick(), cc),
      cdn::PreconditionError);
}

}  // namespace
