// RunManifest provenance records and the registry's deterministic,
// naturally-ordered metric export.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "src/obs/registry.h"
#include "src/obs/run_manifest.h"
#include "src/util/error.h"

namespace cdn::obs {
namespace {

TEST(RunManifestTest, JsonCarriesIdentityBuildAndResources) {
  RunManifest manifest = make_run_manifest("unit_test");
  manifest.seed = 1234;
  manifest.threads = 4;
  manifest.shards = 8;
  manifest.add_fingerprint("system", 0xdeadbeefULL);
  manifest.add_fingerprint("config", 0x1ULL);
  manifest.finalize();

  const std::string json = manifest.to_json();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":8"), std::string::npos);
  // Fingerprints export as sorted 16-hex-digit strings.
  EXPECT_NE(json.find("\"system\":\"00000000deadbeef\""), std::string::npos);
  EXPECT_LT(json.find("\"config\""), json.find("\"system\""));
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\""), std::string::npos);
}

TEST(RunManifestTest, DuplicateFingerprintsDedupAndMismatchThrows) {
  RunManifest manifest = make_run_manifest("unit_test");
  manifest.add_fingerprint("system", 7);
  manifest.add_fingerprint("system", 7);  // same value: fine
  EXPECT_EQ(manifest.fingerprints.size(), 1u);
  EXPECT_THROW(manifest.add_fingerprint("system", 8), cdn::PreconditionError);
}

TEST(RunManifestTest, AddFingerprintsTakesCheckpointSections) {
  RunManifest manifest = make_run_manifest("unit_test");
  const std::vector<std::pair<std::string, std::uint64_t>> sections{
      {"config", 1}, {"placement", 2}};
  manifest.add_fingerprints(sections);
  EXPECT_EQ(manifest.fingerprints.size(), 2u);
}

TEST(RunManifestTest, FinalizeMeasuresElapsedWall) {
  RunManifest manifest = make_run_manifest("unit_test");
  manifest.finalize();
  EXPECT_GE(manifest.wall_seconds, 0.0);
  EXPECT_GE(manifest.cpu_seconds, 0.0);
#ifdef __unix__
  EXPECT_GT(manifest.peak_rss_bytes, 0u);
#endif
}

TEST(NaturalMetricOrderTest, DigitRunsCompareNumerically) {
  // The fix this ordering exists for: server/10 must not sort between
  // server/1 and server/2.
  EXPECT_TRUE(natural_metric_name_less("server/2/latency_ms",
                                       "server/10/latency_ms"));
  EXPECT_FALSE(natural_metric_name_less("server/10/latency_ms",
                                        "server/2/latency_ms"));
  EXPECT_TRUE(natural_metric_name_less("a1b", "a1c"));
  EXPECT_TRUE(natural_metric_name_less("a9", "a10"));
  EXPECT_TRUE(natural_metric_name_less("a", "a1"));
  // Strict weak ordering: equal strings are not less, and zero-padding
  // differences still produce a stable, asymmetric order.
  EXPECT_FALSE(natural_metric_name_less("a01", "a01"));
  EXPECT_NE(natural_metric_name_less("a01", "a1"),
            natural_metric_name_less("a1", "a01"));
}

TEST(NaturalMetricOrderTest, RegistryExportsServersInNumericOrder) {
  Registry registry;
  registry.counter("server/10/hits").add(1);
  registry.counter("server/2/hits").add(1);
  registry.counter("server/1/hits").add(1);
  const std::string json = registry.to_json();
  const auto p1 = json.find("server/1/hits");
  const auto p2 = json.find("server/2/hits");
  const auto p10 = json.find("server/10/hits");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(p10, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p10);
}

TEST(RunManifestTest, RegistryEmbedsManifestFirst) {
  Registry registry;
  registry.counter("requests").add(5);
  RunManifest manifest = make_run_manifest("unit_test");
  manifest.seed = 42;
  const std::string json = registry.to_json(&manifest);
  const auto manifest_pos = json.find("\"manifest\"");
  const auto counters_pos = json.find("\"counters\"");
  ASSERT_NE(manifest_pos, std::string::npos);
  ASSERT_NE(counters_pos, std::string::npos);
  EXPECT_LT(manifest_pos, counters_pos);
  EXPECT_NE(json.find("\"tool\":\"unit_test\""), std::string::npos);
  // Without a manifest the export is unchanged legacy shape.
  EXPECT_EQ(registry.to_json().find("\"manifest\""), std::string::npos);
}

TEST(RunManifestTest, WriteJsonFileRoundTrips) {
  RunManifest manifest = make_run_manifest("unit_test");
  const std::string path = testing::TempDir() + "/manifest_test.json";
  manifest.write_json_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"schema_version\":1"), std::string::npos);
}

}  // namespace
}  // namespace cdn::obs
