// Unit and property tests for per-cluster replication (the paper's future
// work) and the lazy greedy it relies on.

#include <gtest/gtest.h>

#include "src/cdn/cost.h"
#include "src/cluster/cluster_replication.h"
#include "src/cluster/cluster_scheme.h"
#include "src/cluster/cluster_sim.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::test::TestSystem;

TEST(ClusterSchemeTest, PartitionCoversAllRanks) {
  const auto t = TestSystem::make();
  const cluster::ClusterScheme scheme(*t.catalog, 4);
  EXPECT_EQ(scheme.cluster_count(), t.catalog->site_count() * 4);
  for (workload::SiteId j = 0; j < t.catalog->site_count(); ++j) {
    std::uint32_t expected_next = 1;
    for (std::uint32_t c = 0; c < 4; ++c) {
      const auto& cl = scheme.cluster(
          static_cast<cluster::ClusterId>(j * 4 + c));
      EXPECT_EQ(cl.site, j);
      EXPECT_EQ(cl.first_rank, expected_next);
      expected_next = cl.last_rank + 1;
    }
    EXPECT_EQ(expected_next, t.catalog->objects_per_site() + 1);
  }
}

TEST(ClusterSchemeTest, MassesSumToOnePerSite) {
  const auto t = TestSystem::make();
  const cluster::ClusterScheme scheme(*t.catalog, 5);
  for (workload::SiteId j = 0; j < t.catalog->site_count(); ++j) {
    double mass = 0.0;
    std::uint64_t bytes = 0;
    for (std::uint32_t c = 0; c < 5; ++c) {
      const auto& cl =
          scheme.cluster(static_cast<cluster::ClusterId>(j * 5 + c));
      mass += cl.mass;
      bytes += cl.bytes;
    }
    EXPECT_NEAR(mass, 1.0, 1e-9);
    EXPECT_EQ(bytes, t.catalog->site_bytes(j));
  }
}

TEST(ClusterSchemeTest, HeadClusterCarriesMostMass) {
  const auto t = TestSystem::make();
  const cluster::ClusterScheme scheme(*t.catalog, 4);
  // Zipf: the first rank-quarter holds far more probability mass than the
  // last.
  const auto& head = scheme.cluster(0);
  const auto& tail = scheme.cluster(3);
  EXPECT_GT(head.mass, 3.0 * tail.mass);
}

TEST(ClusterSchemeTest, ClusterOfInvertsPartition) {
  const auto t = TestSystem::make();
  for (std::uint32_t c : {1u, 3u, 7u, 100u}) {
    if (c > t.catalog->objects_per_site()) continue;
    const cluster::ClusterScheme scheme(*t.catalog, c);
    for (workload::SiteId j : {workload::SiteId{0}, workload::SiteId{5}}) {
      for (std::uint32_t rank = 1; rank <= t.catalog->objects_per_site();
           ++rank) {
        const auto id = scheme.cluster_of(j, rank);
        const auto& cl = scheme.cluster(id);
        EXPECT_EQ(cl.site, j);
        EXPECT_GE(rank, cl.first_rank);
        EXPECT_LE(rank, cl.last_rank);
      }
    }
  }
}

TEST(ClusterSchemeTest, OneClusterPerSiteIsWholeSite) {
  const auto t = TestSystem::make();
  const cluster::ClusterScheme scheme(*t.catalog, 1);
  EXPECT_EQ(scheme.cluster_count(), t.catalog->site_count());
  for (workload::SiteId j = 0; j < t.catalog->site_count(); ++j) {
    const auto& cl = scheme.cluster(j);
    EXPECT_EQ(cl.bytes, t.catalog->site_bytes(j));
    EXPECT_NEAR(cl.mass, 1.0, 1e-9);
  }
}

TEST(ClusterSchemeTest, RejectsBadClusterCounts) {
  const auto t = TestSystem::make();
  EXPECT_THROW(cluster::ClusterScheme(*t.catalog, 0), cdn::PreconditionError);
  EXPECT_THROW(
      cluster::ClusterScheme(
          *t.catalog,
          static_cast<std::uint32_t>(t.catalog->objects_per_site() + 1)),
      cdn::PreconditionError);
}

TEST(LazyGreedyTest, MatchesExhaustiveGreedyGlobal) {
  // At 1 cluster per site the lazy greedy solves exactly the same problem
  // as greedy_global: final costs must agree (replica sets may differ only
  // through benefit ties).
  const auto t = TestSystem::make();
  const auto exhaustive = placement::greedy_global(*t.system);
  const auto clustered = cluster::cluster_greedy_global(*t.system, 1);
  EXPECT_NEAR(clustered.predicted_total_cost,
              exhaustive.predicted_total_cost,
              1e-6 * exhaustive.predicted_total_cost);
  EXPECT_EQ(clustered.replicas_created, exhaustive.replicas_created);
}

TEST(LazyGreedyTest, RespectsBudgets) {
  const auto t = TestSystem::make();
  const auto result = cluster::cluster_greedy_global(*t.system, 8);
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    EXPECT_LE(result.placement.used_bytes(server),
              t.system->server_storage(server));
  }
}

TEST(LazyGreedyTest, CostTrajectoryDecreases) {
  const auto t = TestSystem::make();
  const auto out = cluster::lazy_greedy_replication(
      *t.demand, *t.distances, t.system->server_storage(),
      t.system->site_bytes());
  for (std::size_t i = 1; i < out.cost_trajectory.size(); ++i) {
    EXPECT_LE(out.cost_trajectory[i], out.cost_trajectory[i - 1] + 1e-6);
  }
}

TEST(ClusterReplicationTest, FinerGranularityNeverWorsensPredictedCost) {
  // Splitting sites strictly enlarges the feasible placement set, so the
  // greedy should do at least as well (up to greedy suboptimality — allow
  // a tiny tolerance).
  const auto t = TestSystem::make();
  const auto per_site = cluster::cluster_greedy_global(*t.system, 1);
  const auto per_cluster = cluster::cluster_greedy_global(*t.system, 8);
  EXPECT_LE(per_cluster.predicted_total_cost,
            per_site.predicted_total_cost * 1.02);
}

TEST(ClusterReplicationTest, SimulationMatchesPrediction) {
  const auto t = TestSystem::make();
  const auto result = cluster::cluster_greedy_global(*t.system, 4);
  sim::SimulationConfig cfg;
  cfg.total_requests = 1'000'000;
  cfg.seed = 5;
  const auto report = cluster::simulate_clusters(*t.system, result, cfg);
  // Pure replication: measured hop cost converges to the prediction.
  EXPECT_NEAR(report.mean_cost_hops / result.predicted_cost_per_request, 1.0,
              0.02);
  EXPECT_DOUBLE_EQ(report.cache_hit_ratio, 0.0);
}

TEST(ClusterReplicationTest, FutureWorkOrderingRobustParts) {
  // Section 5.3 conjectures the hybrid beats per-cluster replication.  The
  // robust half of that ordering — both cluster replication and the hybrid
  // beat per-SITE replication — must always hold.  Whether the hybrid also
  // beats fine-grained cluster replication depends on granularity and
  // demand stationarity (bench_cluster investigates the full conjecture;
  // under perfectly stationary i.i.d. demand a fine enough static cluster
  // placement approaches the per-object optimum and can win).
  const auto t = TestSystem::make();
  sim::SimulationConfig cfg;
  cfg.total_requests = 1'000'000;
  cfg.seed = 7;

  const auto site_repl = placement::greedy_global(*t.system);
  const auto site_report = sim::simulate(*t.system, site_repl, cfg);

  const auto clusters = cluster::cluster_greedy_global(*t.system, 8);
  const auto cluster_report =
      cluster::simulate_clusters(*t.system, clusters, cfg);

  const auto hybrid = placement::hybrid_greedy(*t.system);
  const auto hybrid_report = sim::simulate(*t.system, hybrid, cfg);

  EXPECT_LT(cluster_report.mean_latency_ms, site_report.mean_latency_ms);
  EXPECT_LT(hybrid_report.mean_latency_ms, site_report.mean_latency_ms);
}

TEST(ClusterReplicationTest, CoarseClustersLoseToHybrid) {
  // With per-site granularity (1 cluster/site) the cluster scheme IS pure
  // replication, which the hybrid beats — the paper's headline result.
  const auto t = TestSystem::make();
  sim::SimulationConfig cfg;
  cfg.total_requests = 1'000'000;
  cfg.seed = 9;
  const auto coarse = cluster::cluster_greedy_global(*t.system, 1);
  const auto coarse_report =
      cluster::simulate_clusters(*t.system, coarse, cfg);
  const auto hybrid = placement::hybrid_greedy(*t.system);
  const auto hybrid_report = sim::simulate(*t.system, hybrid, cfg);
  EXPECT_LT(hybrid_report.mean_latency_ms, coarse_report.mean_latency_ms);
}

}  // namespace
