// Unit tests for the adaptive-health layer: per-endpoint latency EWMAs,
// fleet-median outlier ejection, and the kClosed → kEjected → kHalfOpen
// circuit breaker.  All time is passed in explicitly, so every transition
// is exercised deterministically — no sleeping, no sockets.

#include "src/redirectd/ewma.h"

#include <gtest/gtest.h>

#include <chrono>

#include "src/obs/registry.h"
#include "src/util/error.h"

namespace cdn::redirectd {
namespace {

using namespace std::chrono_literals;
using Kind = LatencyEwma::Kind;
using Circuit = LatencyEwma::Circuit;

constexpr std::uint64_t kFastNs = 1'000'000;    // 1 ms
constexpr std::uint64_t kSlowNs = 100'000'000;  // 100 ms

EwmaParams test_params() {
  EwmaParams params;
  params.alpha = 0.3;
  params.eject_multiplier = 4.0;
  params.min_samples = 3;
  params.min_fleet = 3;
  params.eject_cooldown = 1000ms;
  return params;
}

/// Feeds `n` identical samples to one endpoint.
void feed(LatencyEwma& ewma, Kind kind, std::uint32_t index,
          std::uint64_t latency_ns, int n, net::TimePoint now) {
  for (int i = 0; i < n; ++i) ewma.record(kind, index, latency_ns, now);
}

TEST(LatencyEwma, FirstSampleSeedsTheAverage) {
  LatencyEwma ewma(4, 2, test_params(), nullptr);
  const net::TimePoint t0 = net::Clock::now();
  EXPECT_DOUBLE_EQ(ewma.ewma_ns(Kind::kReplica, 1), 0.0);
  ewma.record(Kind::kReplica, 1, 100, t0);
  EXPECT_DOUBLE_EQ(ewma.ewma_ns(Kind::kReplica, 1), 100.0);
  // ewma' = 0.3 * 200 + 0.7 * 100 = 130.
  ewma.record(Kind::kReplica, 1, 200, t0);
  EXPECT_DOUBLE_EQ(ewma.ewma_ns(Kind::kReplica, 1), 130.0);
}

TEST(LatencyEwma, ReplicasAndOriginsAreIndependentSlots) {
  LatencyEwma ewma(4, 2, test_params(), nullptr);
  const net::TimePoint t0 = net::Clock::now();
  ewma.record(Kind::kReplica, 1, 100, t0);
  ewma.record(Kind::kOrigin, 1, 900, t0);
  EXPECT_DOUBLE_EQ(ewma.ewma_ns(Kind::kReplica, 1), 100.0);
  EXPECT_DOUBLE_EQ(ewma.ewma_ns(Kind::kOrigin, 1), 900.0);
}

TEST(LatencyEwma, OutOfRangeIndexThrows) {
  LatencyEwma ewma(4, 2, test_params(), nullptr);
  EXPECT_THROW(ewma.record(Kind::kReplica, 4, 100, net::Clock::now()),
               PreconditionError);
  EXPECT_THROW((void)ewma.ewma_ns(Kind::kOrigin, 2), PreconditionError);
}

TEST(LatencyEwma, NoEjectionBelowMinSamplesOrMinFleet) {
  LatencyEwma ewma(4, 2, test_params(), nullptr);
  const net::TimePoint t0 = net::Clock::now();
  // Two fast endpoints + a slow one with only 2 samples: fleet is big
  // enough but the endpoint is under min_samples.
  feed(ewma, Kind::kReplica, 0, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 1, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 2, kSlowNs, 2, t0);
  EXPECT_EQ(ewma.circuit(Kind::kReplica, 2), Circuit::kClosed);
  EXPECT_FALSE(ewma.demoted(Kind::kReplica, 2, t0));

  // Fresh tracker: a slow endpoint in a fleet of two sampled endpoints
  // never ejects — a median over two points is noise.
  LatencyEwma small(4, 2, test_params(), nullptr);
  feed(small, Kind::kReplica, 0, kFastNs, 5, t0);
  feed(small, Kind::kReplica, 2, kSlowNs, 5, t0);
  EXPECT_EQ(small.circuit(Kind::kReplica, 2), Circuit::kClosed);
  EXPECT_EQ(small.ejections(), 0u);
}

TEST(LatencyEwma, OutlierIsEjectedAndDemoted) {
  obs::Registry metrics;
  LatencyEwma ewma(4, 2, test_params(), &metrics);
  const net::TimePoint t0 = net::Clock::now();
  feed(ewma, Kind::kReplica, 0, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 1, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 2, kSlowNs, 3, t0);

  EXPECT_EQ(ewma.circuit(Kind::kReplica, 2), Circuit::kEjected);
  EXPECT_TRUE(ewma.demoted(Kind::kReplica, 2, t0));
  EXPECT_FALSE(ewma.demoted(Kind::kReplica, 0, t0));
  EXPECT_FALSE(ewma.demoted(Kind::kReplica, 1, t0));
  EXPECT_EQ(ewma.ejections(), 1u);
  EXPECT_DOUBLE_EQ(ewma.fleet_median_ns(), static_cast<double>(kFastNs));
}

TEST(LatencyEwma, CooldownExpiryHalfOpensViaDemotedQuery) {
  LatencyEwma ewma(4, 2, test_params(), nullptr);
  const net::TimePoint t0 = net::Clock::now();
  feed(ewma, Kind::kReplica, 0, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 1, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 2, kSlowNs, 3, t0);
  ASSERT_EQ(ewma.circuit(Kind::kReplica, 2), Circuit::kEjected);

  // Still inside the cooldown: demoted.
  EXPECT_TRUE(ewma.demoted(Kind::kReplica, 2, t0 + 500ms));
  // Cooldown expired: the ranking query itself half-opens the circuit.
  EXPECT_FALSE(ewma.demoted(Kind::kReplica, 2, t0 + 1500ms));
  EXPECT_EQ(ewma.circuit(Kind::kReplica, 2), Circuit::kHalfOpen);
}

TEST(LatencyEwma, HalfOpenHealthySampleClosesTheCircuit) {
  LatencyEwma ewma(4, 2, test_params(), nullptr);
  const net::TimePoint t0 = net::Clock::now();
  // A *mild* outlier: 5 ms against a 1 ms fleet median trips the 4×
  // threshold, but one fast sample (0.3·1 + 0.7·5 = 3.8 ms) brings the
  // EWMA back under it.
  constexpr std::uint64_t kMildNs = 5'000'000;
  feed(ewma, Kind::kReplica, 0, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 1, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 2, kMildNs, 3, t0);
  ASSERT_EQ(ewma.circuit(Kind::kReplica, 2), Circuit::kEjected);
  ASSERT_FALSE(ewma.demoted(Kind::kReplica, 2, t0 + 1500ms));  // half-open

  // The single healthy measurement closes the circuit and counts a
  // recovery.
  ewma.record(Kind::kReplica, 2, kFastNs, t0 + 1600ms);
  EXPECT_EQ(ewma.circuit(Kind::kReplica, 2), Circuit::kClosed);
  EXPECT_FALSE(ewma.demoted(Kind::kReplica, 2, t0 + 1700ms));
  EXPECT_EQ(ewma.recoveries(), 1u);
}

TEST(LatencyEwma, HalfOpenOutlierSampleReEjects) {
  LatencyEwma ewma(4, 2, test_params(), nullptr);
  const net::TimePoint t0 = net::Clock::now();
  feed(ewma, Kind::kReplica, 0, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 1, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 2, kSlowNs, 3, t0);
  ASSERT_FALSE(ewma.demoted(Kind::kReplica, 2, t0 + 1500ms));  // half-open

  // Still slow: one more bad sample re-ejects for a fresh cooldown.
  ewma.record(Kind::kReplica, 2, kSlowNs, t0 + 1600ms);
  EXPECT_EQ(ewma.circuit(Kind::kReplica, 2), Circuit::kEjected);
  EXPECT_EQ(ewma.ejections(), 2u);
  EXPECT_TRUE(ewma.demoted(Kind::kReplica, 2, t0 + 2000ms));
}

TEST(LatencyEwma, EjectedEndpointRecoversEarlyOnHealthySamples) {
  LatencyEwma ewma(4, 2, test_params(), nullptr);
  const net::TimePoint t0 = net::Clock::now();
  feed(ewma, Kind::kReplica, 0, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 1, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 2, kSlowNs, 3, t0);
  ASSERT_EQ(ewma.circuit(Kind::kReplica, 2), Circuit::kEjected);

  // The prober keeps measuring ejected endpoints; once the EWMA is no
  // longer an outlier the circuit closes without waiting out the cooldown.
  feed(ewma, Kind::kReplica, 2, kFastNs, 10, t0 + 100ms);
  EXPECT_EQ(ewma.circuit(Kind::kReplica, 2), Circuit::kClosed);
  EXPECT_GE(ewma.recoveries(), 1u);
  EXPECT_FALSE(ewma.demoted(Kind::kReplica, 2, t0 + 200ms));
}

TEST(LatencyEwma, ParamsAreValidated) {
  EwmaParams bad = test_params();
  bad.alpha = 0.0;
  EXPECT_THROW(LatencyEwma(4, 2, bad, nullptr), PreconditionError);
  bad = test_params();
  bad.eject_multiplier = 1.0;
  EXPECT_THROW(LatencyEwma(4, 2, bad, nullptr), PreconditionError);
  bad = test_params();
  bad.min_fleet = 1;
  EXPECT_THROW(LatencyEwma(4, 2, bad, nullptr), PreconditionError);
}

TEST(LatencyEwma, MetricsCountEjectionsAndRecoveries) {
  obs::Registry metrics;
  LatencyEwma ewma(4, 2, test_params(), &metrics);
  const net::TimePoint t0 = net::Clock::now();
  feed(ewma, Kind::kReplica, 0, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 1, kFastNs, 3, t0);
  feed(ewma, Kind::kReplica, 2, kSlowNs, 3, t0);
  feed(ewma, Kind::kReplica, 2, kFastNs, 10, t0 + 100ms);
  EXPECT_EQ(metrics.counter("redirect/ewma/ejections").value(), 1u);
  EXPECT_EQ(metrics.counter("redirect/ewma/recoveries").value(), 1u);
}

}  // namespace
}  // namespace cdn::redirectd
