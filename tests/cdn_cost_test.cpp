// Unit tests for the aggregate cost D of Section 3.1.

#include <gtest/gtest.h>

#include <vector>

#include "src/cdn/cost.h"
#include "src/util/error.h"
#include "src/workload/demand.h"

namespace {

using cdn::sys::cost_per_request;
using cdn::sys::DistanceOracle;
using cdn::sys::NearestReplicaIndex;
using cdn::sys::ReplicaPlacement;
using cdn::sys::total_remote_cost;
using cdn::workload::DemandMatrix;

struct Fixture {
  // 2 servers, 2 sites; primaries 3 hops from server 0, 2 from server 1.
  DistanceOracle distances{2, 2, {0, 1, 1, 0}, {3, 3, 2, 2}};
  ReplicaPlacement placement{std::vector<std::uint64_t>{100, 100},
                             std::vector<std::uint64_t>{10, 20}};
  DemandMatrix demand = DemandMatrix::from_values(
      2, 2, std::vector<double>{100, 50, 200, 25});
};

TEST(CostTest, AllFromPrimaries) {
  Fixture f;
  const NearestReplicaIndex sn(f.distances, f.placement);
  // D = (100+50)*3 + (200+25)*2 = 450 + 450 = 900.
  EXPECT_DOUBLE_EQ(total_remote_cost(f.demand, sn), 900.0);
  EXPECT_DOUBLE_EQ(cost_per_request(f.demand, sn), 900.0 / 375.0);
}

TEST(CostTest, LocalReplicaRemovesTerm) {
  Fixture f;
  f.placement.add(0, 0);
  const NearestReplicaIndex sn(f.distances, f.placement);
  // Server 0 site 0 local (0); server 1 now reaches site 0 via server 0 at
  // cost 1 < primary 2.  D = 0 + 50*3 + 200*1 + 25*2 = 400.
  EXPECT_DOUBLE_EQ(total_remote_cost(f.demand, sn), 400.0);
}

TEST(CostTest, HitRatiosScaleMissTraffic) {
  Fixture f;
  const NearestReplicaIndex sn(f.distances, f.placement);
  // 50% cache hit everywhere halves the cost.
  const auto half = [](cdn::sys::ServerIndex, cdn::sys::SiteIndex) {
    return 0.5;
  };
  EXPECT_DOUBLE_EQ(total_remote_cost(f.demand, sn, half), 450.0);
}

TEST(CostTest, PerSiteHitRatios) {
  Fixture f;
  const NearestReplicaIndex sn(f.distances, f.placement);
  // Site 0 fully cached, site 1 not: D = 0 + 50*3 + 0 + 25*2 = 200.
  const auto fn = [](cdn::sys::ServerIndex, cdn::sys::SiteIndex j) {
    return j == 0 ? 1.0 : 0.0;
  };
  EXPECT_DOUBLE_EQ(total_remote_cost(f.demand, sn, fn), 200.0);
}

TEST(CostTest, FullReplicationIsZeroCost) {
  Fixture f;
  for (cdn::sys::ServerIndex i = 0; i < 2; ++i) {
    for (cdn::sys::SiteIndex j = 0; j < 2; ++j) f.placement.add(i, j);
  }
  const NearestReplicaIndex sn(f.distances, f.placement);
  EXPECT_DOUBLE_EQ(total_remote_cost(f.demand, sn), 0.0);
}

TEST(CostTest, HitRatioIgnoredWhereReplicated) {
  Fixture f;
  f.placement.add(0, 0);
  const NearestReplicaIndex sn(f.distances, f.placement);
  // Even a crazy hit function cannot change zero-cost local cells.
  const auto weird = [](cdn::sys::ServerIndex, cdn::sys::SiteIndex) {
    return -5.0;  // deliberately out of range: must only scale remote cells
  };
  const double d = total_remote_cost(f.demand, sn, weird);
  // Remote cells scaled by (1 - (-5)) = 6: (50*3 + 200*1 + 25*2)*6.
  EXPECT_DOUBLE_EQ(d, 6.0 * 400.0);
}

TEST(CostTest, RejectsDimensionMismatch) {
  Fixture f;
  const NearestReplicaIndex sn(f.distances, f.placement);
  const auto other = DemandMatrix::from_values(1, 2, std::vector<double>{1, 2});
  EXPECT_THROW(total_remote_cost(other, sn), cdn::PreconditionError);
}

TEST(CostTest, CostPerRequestRequiresTraffic) {
  Fixture f;
  const NearestReplicaIndex sn(f.distances, f.placement);
  const auto zero = DemandMatrix::from_values(2, 2,
                                              std::vector<double>{0, 0, 0, 0});
  EXPECT_THROW(cost_per_request(zero, sn), cdn::PreconditionError);
}

}  // namespace
