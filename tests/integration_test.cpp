// End-to-end integration tests on a small scenario: the paper's qualitative
// orderings must hold — the hybrid scheme is at least as good as both pure
// replication and pure caching, placements respect storage constraints, and
// the model's predicted cost tracks the simulator's measured cost.

#include <gtest/gtest.h>

#include "src/core/hybridcdn.h"

namespace {

using namespace cdn;

core::ScenarioConfig small_config() {
  core::ScenarioConfig cfg;
  cfg.topology = {.transit_domains = 2,
                  .transit_nodes_per_domain = 3,
                  .stub_domains_per_transit_node = 3,
                  .nodes_per_stub_domain = 6};
  cfg.server_count = 8;
  cfg.surge.objects_per_site = 200;
  cfg.classes = {{5, 1.0, "low"}, {10, 4.0, "medium"}, {5, 16.0, "high"}};
  cfg.storage_fraction = 0.08;
  cfg.demand_total = 1e6;
  cfg.seed = 7;
  return cfg;
}

sim::SimulationConfig small_sim() {
  sim::SimulationConfig sc;
  sc.total_requests = 400'000;
  sc.warmup_fraction = 0.4;
  sc.seed = 99;
  return sc;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new core::Scenario(small_config());
    runs_ = new std::vector<core::MechanismRun>(core::run_mechanisms(
        *scenario_,
        {core::replication_mechanism(), core::caching_mechanism(),
         core::hybrid_mechanism()},
        small_sim()));
  }
  static void TearDownTestSuite() {
    delete runs_;
    runs_ = nullptr;
    delete scenario_;
    scenario_ = nullptr;
  }

  static core::Scenario* scenario_;
  static std::vector<core::MechanismRun>* runs_;

  const core::MechanismRun& run(const std::string& name) {
    for (const auto& r : *runs_) {
      if (r.name == name) return r;
    }
    ADD_FAILURE() << "no run named " << name;
    return runs_->front();
  }
};

core::Scenario* IntegrationTest::scenario_ = nullptr;
std::vector<core::MechanismRun>* IntegrationTest::runs_ = nullptr;

TEST_F(IntegrationTest, HybridBeatsOrMatchesReplication) {
  // Headline claim: hybrid reduces mean latency vs pure replication.
  EXPECT_LT(run("hybrid").report.mean_latency_ms,
            run("replication").report.mean_latency_ms);
}

TEST_F(IntegrationTest, HybridBeatsOrMatchesCaching) {
  EXPECT_LE(run("hybrid").report.mean_latency_ms,
            run("caching").report.mean_latency_ms * 1.02);
}

TEST_F(IntegrationTest, PlacementsRespectStorage) {
  for (const auto& r : *runs_) {
    for (std::size_t i = 0; i < scenario_->system().server_count(); ++i) {
      const auto server = static_cast<sys::ServerIndex>(i);
      EXPECT_LE(r.placement.placement.used_bytes(server),
                r.placement.placement.storage_bytes(server))
          << r.name << " server " << i;
    }
  }
}

TEST_F(IntegrationTest, ReplicationHasNoCacheHits) {
  // Pure replication fills all storage with replicas; leftover slack caches
  // are tiny, so the distribution should be dominated by replica hits and
  // redirections, with near-normal shape (no heavy cache head).
  const auto& rep = run("replication");
  EXPECT_GT(rep.placement.replicas_created, 0u);
}

TEST_F(IntegrationTest, CachingCreatesNoReplicas) {
  EXPECT_EQ(run("caching").placement.replicas_created, 0u);
}

TEST_F(IntegrationTest, HybridCreatesSomeReplicasButFewerThanReplication) {
  const auto hybrid = run("hybrid").placement.replicas_created;
  const auto repl = run("replication").placement.replicas_created;
  EXPECT_GT(hybrid, 0u);
  EXPECT_LT(hybrid, repl);
}

TEST_F(IntegrationTest, HybridHasHighFirstHopRatio) {
  // Hybrid combines cache hits and replica hits at the first hop; it should
  // serve locally at least as much as pure replication does.
  EXPECT_GE(run("hybrid").report.local_ratio,
            run("replication").report.local_ratio);
}

TEST_F(IntegrationTest, PredictedCostTracksMeasuredCost) {
  // Figure 6: the model's predicted cost per request should be within ~15%
  // of the trace-driven measurement (the paper reports < 7% at full scale;
  // the bound here is looser because this scenario is much smaller).
  for (const auto& r : *runs_) {
    const double predicted = r.placement.predicted_cost_per_request;
    const double measured = r.report.mean_cost_hops;
    if (measured < 0.05) continue;  // too small for a relative bound
    EXPECT_NEAR(predicted, measured, 0.20 * measured) << r.name;
  }
}

TEST_F(IntegrationTest, CdfIsMonotoneAndEndsAtOne) {
  for (const auto& r : *runs_) {
    const auto grid = r.report.latency_cdf.grid(32);
    for (std::size_t g = 1; g < grid.size(); ++g) {
      EXPECT_LE(grid[g - 1].f, grid[g].f) << r.name;
    }
    EXPECT_DOUBLE_EQ(grid.back().f, 1.0) << r.name;
  }
}

TEST_F(IntegrationTest, SummaryTableHasOneRowPerMechanism) {
  const auto table = core::summary_table(*runs_);
  EXPECT_EQ(table.rows(), runs_->size());
  EXPECT_FALSE(table.str().empty());
  EXPECT_FALSE(table.csv().empty());
}

}  // namespace
