// Tests of the flow engine's steady-state hit-ratio tiers: the tabulated
// Che occupancy curve against its exact sum, the characteristic-time fixed
// point, tier agreement, the (1 - lambda) / replication semantics shared
// with ServerCacheState, and the clamp diagnostics at the table tails.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/model/hit_ratio_curve.h"
#include "src/model/steady_state.h"
#include "src/util/error.h"
#include "src/util/zipf.h"

namespace {

using cdn::model::che_characteristic_time;
using cdn::model::HitRatioCurve;
using cdn::model::lru_occupancy_exponential;
using cdn::model::OccupancyCurve;
using cdn::model::steady_state_hit_ratios;
using cdn::model::SteadyStateModel;
using cdn::util::ZipfDistribution;

TEST(OccupancyCurveTest, MatchesExactSumAcrossTheGrid) {
  const ZipfDistribution zipf(500, 0.8);
  const OccupancyCurve curve(zipf, 1024);
  for (double z = 1e-3; z < 1e7; z *= 3.7) {
    const double exact = lru_occupancy_exponential(zipf, z);
    EXPECT_NEAR(curve.evaluate_z(z), exact, 0.01 * (exact + 1.0))
        << "z = " << z;
  }
}

TEST(OccupancyCurveTest, RangeAndLimits) {
  const ZipfDistribution zipf(200, 1.0);
  const OccupancyCurve curve(zipf, 512);
  EXPECT_DOUBLE_EQ(curve.evaluate_z(0.0), 0.0);
  EXPECT_NEAR(curve.objects_per_site(), 200.0, 1e-9);
  // Saturated: every object resident.
  EXPECT_NEAR(curve.evaluate_z(curve.z_max()), 200.0, 1.0);
  // Monotone in z.
  double prev = -1.0;
  for (double z = 1e-4; z < 1e8; z *= 10.0) {
    const double n = curve.evaluate_z(z);
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(OccupancyCurveTest, ClampCounterTracksTailEvaluations) {
  const ZipfDistribution zipf(100, 1.0);
  const OccupancyCurve curve(zipf, 256);
  EXPECT_EQ(curve.clamped_evaluations(), 0u);
  (void)curve.evaluate_z(curve.z_max() * 10.0);
  (void)curve.evaluate_z(curve.z_max() * 100.0);
  EXPECT_EQ(curve.clamped_evaluations(), 2u);
  // Copies share the table but start a fresh diagnostic counter.
  const OccupancyCurve copy(curve);
  EXPECT_EQ(copy.clamped_evaluations(), 0u);
}

TEST(CheCharacteristicTimeTest, FixedPointReproducesTheSlotCount) {
  const ZipfDistribution zipf(300, 0.9);
  const OccupancyCurve occupancy(zipf, 1024);
  const std::vector<double> weights{0.5, 0.3, 0.2};
  const std::uint64_t slots = 150;
  const double K = che_characteristic_time(weights, occupancy, slots);
  ASSERT_GT(K, 0.0);
  double resident = 0.0;
  for (const double w : weights) {
    resident += occupancy.evaluate(w, K);
  }
  EXPECT_NEAR(resident, static_cast<double>(slots), 0.02 * slots);
}

TEST(CheCharacteristicTimeTest, DegenerateInputs) {
  const ZipfDistribution zipf(100, 1.0);
  const OccupancyCurve occupancy(zipf, 512);
  const std::vector<double> weights{0.6, 0.4};
  EXPECT_DOUBLE_EQ(che_characteristic_time(weights, occupancy, 0), 0.0);
  const std::vector<double> zero_weights{0.0, 0.0};
  EXPECT_DOUBLE_EQ(che_characteristic_time(zero_weights, occupancy, 100),
                   0.0);
  // Cache fits the whole cacheable set: K is pushed past the table edge for
  // every site (z_max over the smallest positive weight).
  EXPECT_DOUBLE_EQ(che_characteristic_time(weights, occupancy, 100'000),
                   occupancy.z_max() / 0.4);
}

struct TierFixture {
  ZipfDistribution zipf{100, 1.0};
  HitRatioCurve curve{zipf, 512};
  OccupancyCurve occupancy{zipf, 512};
  std::vector<double> popularity{0.4, 0.3, 0.2, 0.1};
  std::vector<std::uint8_t> replicated{0, 0, 0, 0};
  std::vector<double> lambdas{0.0, 0.0, 0.0, 0.0};

  std::vector<double> ratios(SteadyStateModel tier, std::uint64_t slots) {
    return steady_state_hit_ratios(tier, popularity, replicated, lambdas,
                                   zipf, curve, &occupancy, slots);
  }
};

TEST(SteadyStateTiersTest, ClosedFormAndCheAgreeWithinModelError) {
  TierFixture f;
  const auto closed = f.ratios(SteadyStateModel::kClosedForm, 120);
  const auto che = f.ratios(SteadyStateModel::kChe, 120);
  ASSERT_EQ(closed.size(), f.popularity.size());
  ASSERT_EQ(che.size(), f.popularity.size());
  for (std::size_t j = 0; j < closed.size(); ++j) {
    EXPECT_GT(closed[j], 0.0);
    EXPECT_LT(closed[j], 1.0);
    // Both approximate the same LRU steady state; they may differ by model
    // error but never wildly.
    EXPECT_NEAR(closed[j], che[j], 0.15) << "site " << j;
  }
}

TEST(SteadyStateTiersTest, MoreSlotsNeverHurt) {
  TierFixture f;
  for (const auto tier :
       {SteadyStateModel::kClosedForm, SteadyStateModel::kChe}) {
    const auto small = f.ratios(tier, 40);
    const auto large = f.ratios(tier, 250);
    for (std::size_t j = 0; j < small.size(); ++j) {
      EXPECT_GE(large[j] + 1e-9, small[j]) << "site " << j;
    }
  }
}

TEST(SteadyStateTiersTest, ReplicatedSitesBypassTheCache) {
  TierFixture f;
  f.replicated = {0, 1, 0, 1};
  for (const auto tier :
       {SteadyStateModel::kClosedForm, SteadyStateModel::kChe}) {
    const auto ratios = f.ratios(tier, 120);
    EXPECT_DOUBLE_EQ(ratios[1], 0.0);
    EXPECT_DOUBLE_EQ(ratios[3], 0.0);
    EXPECT_GT(ratios[0], 0.0);
    EXPECT_GT(ratios[2], 0.0);
  }
}

TEST(SteadyStateTiersTest, LambdaScalesTheCacheableMass) {
  TierFixture f;
  const auto clean = f.ratios(SteadyStateModel::kClosedForm, 120);
  f.lambdas = {0.3, 0.3, 0.3, 0.3};
  const auto flagged = f.ratios(SteadyStateModel::kClosedForm, 120);
  for (std::size_t j = 0; j < clean.size(); ++j) {
    EXPECT_LE(flagged[j], 0.7 + 1e-9);
    EXPECT_LT(flagged[j], clean[j]);
  }
}

TEST(SteadyStateTiersTest, SaturatedCacheHitsEverythingCacheable) {
  TierFixture f;
  f.lambdas = {0.2, 0.0, 0.0, 0.0};
  // Slots cover the whole catalogue (4 sites x 100 objects).
  for (const auto tier :
       {SteadyStateModel::kClosedForm, SteadyStateModel::kChe}) {
    const auto ratios = f.ratios(tier, 1'000'000);
    EXPECT_NEAR(ratios[0], 0.8, 0.02);
    for (std::size_t j = 1; j < ratios.size(); ++j) {
      EXPECT_NEAR(ratios[j], 1.0, 0.02) << "site " << j;
    }
  }
}

TEST(SteadyStateTiersTest, EmpiricalTierHasNoComputationHere) {
  TierFixture f;
  EXPECT_THROW(f.ratios(SteadyStateModel::kEmpirical, 120),
               cdn::PreconditionError);
}

}  // namespace
