// Unit tests for local-search refinement ("greedy with backtracking" [12])
// and the topology-informed baseline [25].

#include <gtest/gtest.h>

#include "src/cdn/cost.h"
#include "src/placement/greedy_global.h"
#include "src/placement/local_search.h"
#include "src/placement/baselines.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::test::TestSystem;

TEST(LocalSearchTest, NeverIncreasesCost) {
  const auto t = TestSystem::make();
  auto result = placement::greedy_global(*t.system);
  const double before = result.predicted_total_cost;
  const auto stats = placement::local_search_refine(*t.system, result);
  EXPECT_DOUBLE_EQ(stats.initial_cost, before);
  EXPECT_LE(stats.final_cost, before);
  EXPECT_DOUBLE_EQ(result.predicted_total_cost, stats.final_cost);
}

TEST(LocalSearchTest, ImprovesRandomPlacementSubstantially) {
  const auto t = TestSystem::make();
  util::Rng rng(3);
  auto result = placement::random_placement(*t.system, rng);
  // Random placement reports modelled hits; strip them to evaluate the
  // pure-replication objective the search optimises.
  result.caching_enabled = false;
  result.modeled_hit.assign(
      t.system->server_count() * t.system->site_count(), 0.0);
  const auto stats = placement::local_search_refine(*t.system, result);
  EXPECT_GT(stats.swaps_applied, 0u);
  EXPECT_LT(stats.final_cost, stats.initial_cost);
}

TEST(LocalSearchTest, GreedyIsNearLocalOptimum) {
  // [14]'s finding that greedy-global "achieves very good solution quality"
  // implies local search can only squeeze a little more out of it.
  const auto t = TestSystem::make();
  auto result = placement::greedy_global(*t.system);
  const auto stats = placement::local_search_refine(*t.system, result);
  EXPECT_GE(stats.final_cost, 0.80 * stats.initial_cost);
}

TEST(LocalSearchTest, MaxSwapsCapRespected) {
  const auto t = TestSystem::make();
  util::Rng rng(4);
  auto result = placement::random_placement(*t.system, rng);
  result.caching_enabled = false;
  placement::LocalSearchOptions options;
  options.max_swaps = 2;
  const auto stats =
      placement::local_search_refine(*t.system, result, options);
  EXPECT_LE(stats.swaps_applied, 2u);
}

TEST(LocalSearchTest, PlacementStaysFeasible) {
  const auto t = TestSystem::make();
  util::Rng rng(5);
  auto result = placement::random_placement(*t.system, rng);
  result.caching_enabled = false;
  placement::local_search_refine(*t.system, result);
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    EXPECT_LE(result.placement.used_bytes(server),
              t.system->server_storage(server));
  }
  // Nearest index consistent with the refined placement.
  sys::NearestReplicaIndex rebuilt(t.system->distances(), result.placement);
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    for (std::size_t j = 0; j < t.system->site_count(); ++j) {
      EXPECT_DOUBLE_EQ(result.nearest.cost(static_cast<sys::ServerIndex>(i),
                                           static_cast<sys::SiteIndex>(j)),
                       rebuilt.cost(static_cast<sys::ServerIndex>(i),
                                    static_cast<sys::SiteIndex>(j)));
    }
  }
}

TEST(LocalSearchTest, BacktrackingWrapperBeatsOrMatchesGreedy) {
  const auto t = TestSystem::make();
  const auto greedy = placement::greedy_global(*t.system);
  const auto refined = placement::greedy_with_backtracking(*t.system);
  EXPECT_LE(refined.predicted_total_cost, greedy.predicted_total_cost);
  EXPECT_EQ(refined.algorithm, "greedy-backtracking");
}

TEST(TopologyInformedTest, ProducesFeasibleReplicationOnlyPlacement) {
  const auto t = TestSystem::make();
  const auto result = placement::topology_informed_placement(*t.system);
  EXPECT_GT(result.replicas_created, 0u);
  EXPECT_FALSE(result.caching_enabled);
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    EXPECT_LE(result.placement.used_bytes(server),
              t.system->server_storage(server));
  }
}

TEST(TopologyInformedTest, GreedyBeatsTopologyInformed) {
  // [25]'s scheme ignores demand geography; the cost-driven greedy must
  // not lose to it.
  const auto t = TestSystem::make();
  const auto topo = placement::topology_informed_placement(*t.system);
  const auto greedy = placement::greedy_global(*t.system);
  EXPECT_LE(greedy.predicted_total_cost,
            topo.predicted_total_cost * 1.0001);
}

}  // namespace
