// Unit tests for the RAII wall-clock probe.

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/scoped_timer.h"

namespace {

using cdn::obs::ScopedTimer;
using cdn::obs::TimerStat;

TEST(ScopedTimerTest, NullTargetIsANoOp) {
  ScopedTimer timer(nullptr);
  timer.stop();  // must not crash or record anything anywhere
}

TEST(ScopedTimerTest, RecordsOnScopeExit) {
  TimerStat stat;
  {
    ScopedTimer timer(&stat);
  }
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_GE(stat.total_ns(), 0u);
}

TEST(ScopedTimerTest, StopIsIdempotent) {
  TimerStat stat;
  {
    ScopedTimer timer(&stat);
    timer.stop();
    timer.stop();  // second stop: no extra sample
  }                // destructor: no extra sample either
  EXPECT_EQ(stat.count(), 1u);
}

TEST(ScopedTimerTest, SeparateProbesAccumulate) {
  TimerStat stat;
  for (int i = 0; i < 3; ++i) {
    ScopedTimer timer(&stat);
  }
  EXPECT_EQ(stat.count(), 3u);
  EXPECT_EQ(stat.per_call_ms().count(), 3u);
}

}  // namespace
