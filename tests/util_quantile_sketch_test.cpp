// Tests of the bounded-memory quantile sketch: relative-error guarantee
// against the exact EmpiricalCdf, exact merge semantics, and the
// LatencyDistribution mode switch.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/cdf.h"
#include "src/util/error.h"
#include "src/util/quantile_sketch.h"
#include "src/util/rng.h"

namespace {

using cdn::util::EmpiricalCdf;
using cdn::util::LatencyDistribution;
using cdn::util::QuantileSketch;

TEST(QuantileSketchTest, ExactAggregates) {
  QuantileSketch sketch(0.01);
  EXPECT_TRUE(sketch.empty());
  for (const double x : {2.0, 4.0, 6.0, 8.0, 10.0}) sketch.add(x);
  EXPECT_EQ(sketch.count(), 5u);
  EXPECT_DOUBLE_EQ(sketch.sum(), 30.0);
  EXPECT_DOUBLE_EQ(sketch.mean(), 6.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 2.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 10.0);
}

TEST(QuantileSketchTest, QuantilesWithinRelativeErrorBound) {
  const double alpha = 0.01;
  QuantileSketch sketch(alpha);
  EmpiricalCdf exact;
  cdn::util::Rng rng(42);
  for (int i = 0; i < 200'000; ++i) {
    // Latency-shaped data: a point mass at the first hop plus a spread of
    // redirect costs — the distribution the simulator actually produces.
    const double x =
        rng.bernoulli(0.4) ? 2.0 : 2.0 + 28.0 * rng.uniform();
    sketch.add(x);
    exact.add(x);
  }
  for (const double q :
       {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}) {
    const double truth = exact.quantile(q);
    EXPECT_NEAR(sketch.quantile(q), truth, alpha * truth + 1e-9)
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), exact.quantile(0.0));
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), exact.quantile(1.0));
}

TEST(QuantileSketchTest, BoundedMemory) {
  QuantileSketch sketch(0.005);
  cdn::util::Rng rng(7);
  for (int i = 0; i < 1'000'000; ++i) {
    sketch.add(2.0 + 100.0 * rng.uniform());
  }
  // One double per sample would be 8 MB; the sketch stays in the hundreds
  // of buckets for any latency range this repo produces.
  EXPECT_LT(sketch.bucket_count(), 2000u);
}

TEST(QuantileSketchTest, MergeEqualsCombinedAdds) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.01);
  QuantileSketch combined(0.01);
  cdn::util::Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double x = 1.0 + 50.0 * rng.uniform();
    (i % 2 == 0 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Bucket counts merge exactly; the running sum differs only by float
  // accumulation order.
  EXPECT_NEAR(a.sum() / combined.sum(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketchTest, MergeRequiresSameErrorBound) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.02);
  EXPECT_THROW(a.merge(b), cdn::PreconditionError);
}

TEST(QuantileSketchTest, EvaluateIsAMonotoneCdf) {
  QuantileSketch sketch(0.01);
  cdn::util::Rng rng(3);
  for (int i = 0; i < 50'000; ++i) sketch.add(2.0 + 30.0 * rng.uniform());
  EXPECT_DOUBLE_EQ(sketch.evaluate(1.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.evaluate(40.0), 1.0);
  double prev = 0.0;
  for (double x = 2.0; x <= 32.0; x += 0.5) {
    const double f = sketch.evaluate(x);
    EXPECT_GE(f, prev);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(QuantileSketchTest, ZeroValuesShareTheZeroBucket) {
  QuantileSketch sketch(0.01);
  sketch.add(0.0);
  sketch.add(0.0);
  sketch.add(10.0);
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 10.0);
}

TEST(LatencyDistributionTest, ExactModeMatchesEmpiricalCdf) {
  LatencyDistribution dist;
  EmpiricalCdf exact;
  cdn::util::Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double x = 2.0 + 20.0 * rng.uniform();
    dist.add(x);
    exact.add(x);
  }
  EXPECT_FALSE(dist.sketched());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(dist.quantile(q), exact.quantile(q));
  }
  EXPECT_DOUBLE_EQ(dist.mean(), exact.mean());
}

TEST(LatencyDistributionTest, SketchModeSwitchBeforeFirstAdd) {
  LatencyDistribution dist;
  dist.use_sketch(0.01);
  EXPECT_TRUE(dist.sketched());
  dist.add(5.0);
  EXPECT_EQ(dist.count(), 1u);
  // Switching after samples exist is a precondition violation.
  LatencyDistribution late;
  late.add(1.0);
  EXPECT_THROW(late.use_sketch(0.01), cdn::PreconditionError);
}

TEST(LatencyDistributionTest, MergeRequiresSameMode) {
  LatencyDistribution exact_mode;
  exact_mode.add(1.0);
  LatencyDistribution sketch_mode;
  sketch_mode.use_sketch(0.01);
  sketch_mode.add(2.0);
  EXPECT_THROW(exact_mode.merge(sketch_mode), cdn::PreconditionError);
  LatencyDistribution other_sketch;
  other_sketch.use_sketch(0.01);
  other_sketch.add(3.0);
  sketch_mode.merge(other_sketch);
  EXPECT_EQ(sketch_mode.count(), 2u);
}

}  // namespace
