// Property-based tests run over EVERY cache policy: capacity invariants,
// residency consistency, and stats sanity under randomized workloads.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cache/cache_factory.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace {

using namespace cdn::cache;
using cdn::util::Rng;
using cdn::util::ZipfDistribution;

class CachePropertyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(CachePropertyTest, NeverExceedsCapacityUnderRandomWorkload) {
  auto cache = make_cache(GetParam(), 1000);
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const ObjectKey key = rng.uniform_index(500);
    const auto bytes = rng.uniform_index(300) + 1;
    cache->access(key, bytes);
    ASSERT_LE(cache->used_bytes(), cache->capacity_bytes());
  }
}

TEST_P(CachePropertyTest, UsedBytesMatchesResidentObjects) {
  // Fixed per-key sizes so residency bytes are recomputable.
  auto cache = make_cache(GetParam(), 2000);
  Rng rng(43);
  std::vector<std::uint64_t> sizes(300);
  for (auto& s : sizes) s = rng.uniform_index(100) + 1;
  for (int i = 0; i < 20000; ++i) {
    const ObjectKey key = rng.uniform_index(sizes.size());
    cache->access(key, sizes[key]);
  }
  std::uint64_t recomputed = 0;
  std::size_t resident = 0;
  for (ObjectKey key = 0; key < sizes.size(); ++key) {
    if (cache->contains(key)) {
      recomputed += sizes[key];
      ++resident;
    }
  }
  EXPECT_EQ(recomputed, cache->used_bytes());
  EXPECT_EQ(resident, cache->object_count());
}

TEST_P(CachePropertyTest, LookupConsistentWithContains) {
  auto cache = make_cache(GetParam(), 500);
  Rng rng(44);
  for (int i = 0; i < 5000; ++i) {
    const ObjectKey key = rng.uniform_index(100);
    const bool resident = cache->contains(key);
    EXPECT_EQ(cache->lookup(key), resident);
    if (!resident) cache->admit(key, rng.uniform_index(50) + 1);
  }
}

TEST_P(CachePropertyTest, ShrinkToZeroEmptiesCache) {
  auto cache = make_cache(GetParam(), 1000);
  Rng rng(45);
  for (int i = 0; i < 500; ++i) {
    cache->access(rng.uniform_index(200), rng.uniform_index(30) + 1);
  }
  cache->set_capacity(0);
  EXPECT_EQ(cache->used_bytes(), 0u);
  EXPECT_EQ(cache->object_count(), 0u);
}

TEST_P(CachePropertyTest, EraseAllLeavesEmpty) {
  auto cache = make_cache(GetParam(), 1000);
  for (ObjectKey key = 0; key < 50; ++key) cache->admit(key, 10);
  for (ObjectKey key = 0; key < 50; ++key) cache->erase(key);
  EXPECT_EQ(cache->used_bytes(), 0u);
  EXPECT_EQ(cache->object_count(), 0u);
}

TEST_P(CachePropertyTest, StatsAccountEveryAccess) {
  auto cache = make_cache(GetParam(), 300);
  Rng rng(46);
  const std::uint64_t n = 10000;
  for (std::uint64_t i = 0; i < n; ++i) {
    cache->access(rng.uniform_index(100), rng.uniform_index(20) + 1);
  }
  EXPECT_EQ(cache->stats().accesses(), n);
  EXPECT_EQ(cache->stats().hits() + cache->stats().misses(), n);
  EXPECT_GE(cache->stats().hit_ratio(), 0.0);
  EXPECT_LE(cache->stats().hit_ratio(), 1.0);
}

TEST_P(CachePropertyTest, ZipfWorkloadPrefersPopularObjects) {
  // Under a skewed workload every reasonable policy keeps the most popular
  // object resident almost always; verify hit ratio of rank 1 exceeds that
  // of a deep-tail rank.
  auto cache = make_cache(GetParam(), 80);  // 80 of 1000 unit objects fit
  ZipfDistribution zipf(1000, 1.0);
  Rng rng(47);
  std::uint64_t rank1_hits = 0, rank1 = 0, tail_hits = 0, tail = 0;
  for (int i = 0; i < 100000; ++i) {
    const std::size_t rank = zipf.sample(rng);
    const bool hit = cache->access(rank, 1);
    if (rank == 1) {
      ++rank1;
      rank1_hits += hit;
    } else if (rank >= 900) {
      ++tail;
      tail_hits += hit;
    }
  }
  ASSERT_GT(rank1, 0u);
  ASSERT_GT(tail, 0u);
  const double h1 = static_cast<double>(rank1_hits) / static_cast<double>(rank1);
  const double ht = static_cast<double>(tail_hits) / static_cast<double>(tail);
  EXPECT_GT(h1, ht + 0.3) << policy_name(GetParam());
}

TEST_P(CachePropertyTest, DeterministicReplay) {
  auto a = make_cache(GetParam(), 700);
  auto b = make_cache(GetParam(), 700);
  Rng rng(48);
  std::vector<std::pair<ObjectKey, std::uint64_t>> ops;
  for (int i = 0; i < 5000; ++i) {
    ops.emplace_back(rng.uniform_index(150), rng.uniform_index(40) + 1);
  }
  for (const auto& [key, bytes] : ops) a->access(key, bytes);
  for (const auto& [key, bytes] : ops) b->access(key, bytes);
  EXPECT_EQ(a->used_bytes(), b->used_bytes());
  EXPECT_EQ(a->object_count(), b->object_count());
  EXPECT_EQ(a->stats().hits(), b->stats().hits());
  for (ObjectKey key = 0; key < 150; ++key) {
    EXPECT_EQ(a->contains(key), b->contains(key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CachePropertyTest,
    ::testing::Values(PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kLfu,
                      PolicyKind::kClock, PolicyKind::kDelayedLru),
    [](const ::testing::TestParamInfo<PolicyKind>& param_info) {
      std::string name = policy_name(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
