// Cross-engine equivalence: the incremental placement engines must produce
// byte-identical placements, cost trajectories and commit orders to their
// reference counterparts.  Every double is compared with EXPECT_EQ (exact),
// not EXPECT_NEAR — the contract is bit-identity, not tolerance.
//
// The iteration logs are compared column-by-column except "candidates" and
// "eval_ms": the engines legitimately evaluate different numbers of
// candidates per commit (that is the whole point) and wall-clock differs.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "src/obs/registry.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/placement/local_search.h"
#include "tests/test_support.h"

namespace {

using cdn::placement::greedy_global;
using cdn::placement::GreedyGlobalOptions;
using cdn::placement::hybrid_greedy;
using cdn::placement::HybridGreedyOptions;
using cdn::placement::local_search_refine;
using cdn::placement::LocalSearchOptions;
using cdn::placement::PlacementEngine;
using cdn::placement::PlacementResult;
using cdn::test::TestSystem;

struct EngineRun {
  PlacementResult result;
  std::vector<std::string> log_columns;
  std::vector<std::vector<double>> log_rows;
};

EngineRun run_hybrid(const cdn::sys::CdnSystem& system,
                     HybridGreedyOptions options, PlacementEngine engine) {
  cdn::obs::Registry registry;
  options.engine = engine;
  options.metrics = &registry;
  EngineRun run{hybrid_greedy(system, options), {}, {}};
  const auto* log = registry.find_table("placement/hybrid/iterations");
  if (log != nullptr) {
    run.log_columns = log->columns();
    run.log_rows = log->rows();
  }
  return run;
}

bool skipped_column(const std::string& name) {
  return name == "candidates" || name == "eval_ms";
}

void expect_equivalent(const cdn::sys::CdnSystem& system, const EngineRun& ref,
                       const EngineRun& inc) {
  EXPECT_EQ(ref.result.replicas_created, inc.result.replicas_created);
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto server = static_cast<cdn::sys::ServerIndex>(i);
      const auto site = static_cast<cdn::sys::SiteIndex>(j);
      EXPECT_EQ(ref.result.placement.is_replicated(server, site),
                inc.result.placement.is_replicated(server, site))
          << "placement cell (" << i << ", " << j << ")";
    }
  }
  ASSERT_EQ(ref.result.cost_trajectory.size(),
            inc.result.cost_trajectory.size());
  for (std::size_t k = 0; k < ref.result.cost_trajectory.size(); ++k) {
    EXPECT_EQ(ref.result.cost_trajectory[k], inc.result.cost_trajectory[k])
        << "cost trajectory entry " << k << " is not bit-identical";
  }
  EXPECT_EQ(ref.result.predicted_total_cost, inc.result.predicted_total_cost);
  EXPECT_EQ(ref.result.predicted_cost_per_request,
            inc.result.predicted_cost_per_request);
  ASSERT_EQ(ref.result.modeled_hit.size(), inc.result.modeled_hit.size());
  for (std::size_t k = 0; k < ref.result.modeled_hit.size(); ++k) {
    EXPECT_EQ(ref.result.modeled_hit[k], inc.result.modeled_hit[k])
        << "modeled hit entry " << k;
  }

  // Commit order and per-commit decomposition, from the iteration logs.
  ASSERT_EQ(ref.log_columns, inc.log_columns);
  ASSERT_EQ(ref.log_rows.size(), inc.log_rows.size());
  for (std::size_t r = 0; r < ref.log_rows.size(); ++r) {
    for (std::size_t c = 0; c < ref.log_columns.size(); ++c) {
      if (skipped_column(ref.log_columns[c])) continue;
      EXPECT_EQ(ref.log_rows[r][c], inc.log_rows[r][c])
          << "iteration log row " << r << " column " << ref.log_columns[c];
    }
  }
}

void expect_hybrid_engines_agree(const cdn::sys::CdnSystem& system,
                                 const HybridGreedyOptions& options = {}) {
  const EngineRun ref =
      run_hybrid(system, options, PlacementEngine::kReference);
  const EngineRun inc =
      run_hybrid(system, options, PlacementEngine::kIncremental);
  expect_equivalent(system, ref, inc);
  EXPECT_GT(ref.result.replicas_created, 0u)
      << "vacuous comparison: no replicas committed";
}

TEST(PlacementEngineEquivalenceTest, HybridDefaultOptions) {
  const auto t = TestSystem::make();
  expect_hybrid_engines_agree(*t.system);
}

TEST(PlacementEngineEquivalenceTest, HybridMaxReplicasCaps) {
  const auto t = TestSystem::make();
  for (const std::size_t cap : {std::size_t{1}, std::size_t{3}}) {
    HybridGreedyOptions options;
    options.max_replicas = cap;
    const EngineRun ref =
        run_hybrid(*t.system, options, PlacementEngine::kReference);
    const EngineRun inc =
        run_hybrid(*t.system, options, PlacementEngine::kIncremental);
    expect_equivalent(*t.system, ref, inc);
  }
}

TEST(PlacementEngineEquivalenceTest, HybridSeededPlacement) {
  const auto t = TestSystem::make();
  HybridGreedyOptions seed_options;
  seed_options.max_replicas = 2;
  const auto seed = hybrid_greedy(*t.system, seed_options);
  ASSERT_GT(seed.replicas_created, 0u);
  HybridGreedyOptions options;
  options.seed = &seed.placement;
  expect_hybrid_engines_agree(*t.system, options);
}

TEST(PlacementEngineEquivalenceTest, HybridAddCostPerByte) {
  const auto t = TestSystem::make();
  HybridGreedyOptions options;
  options.add_cost_per_byte = 1e-9;
  const EngineRun ref =
      run_hybrid(*t.system, options, PlacementEngine::kReference);
  const EngineRun inc =
      run_hybrid(*t.system, options, PlacementEngine::kIncremental);
  expect_equivalent(*t.system, ref, inc);
}

TEST(PlacementEngineEquivalenceTest, HybridPerIterationPb) {
  const auto t = TestSystem::make();
  HybridGreedyOptions options;
  options.pb_mode = cdn::model::PbMode::kPerIteration;
  expect_hybrid_engines_agree(*t.system, options);
}

TEST(PlacementEngineEquivalenceTest, HybridTinyStorageNoReplicas) {
  // Degenerate case: nothing fits, both engines must report an empty
  // placement with the identical pure-caching starting cost.
  const auto t = TestSystem::make(4, 6, 2, 100, 0.001);
  const EngineRun ref = run_hybrid(*t.system, {}, PlacementEngine::kReference);
  const EngineRun inc =
      run_hybrid(*t.system, {}, PlacementEngine::kIncremental);
  EXPECT_EQ(ref.result.replicas_created, 0u);
  expect_equivalent(*t.system, ref, inc);
}

TEST(PlacementEngineEquivalenceTest, HeapMetricsAndClampCounterExported) {
  const auto t = TestSystem::make();
  cdn::obs::Registry ref_registry;
  HybridGreedyOptions ref_options;
  ref_options.engine = PlacementEngine::kReference;
  ref_options.metrics = &ref_registry;
  hybrid_greedy(*t.system, ref_options);

  cdn::obs::Registry inc_registry;
  HybridGreedyOptions inc_options;
  inc_options.engine = PlacementEngine::kIncremental;
  inc_options.metrics = &inc_registry;
  hybrid_greedy(*t.system, inc_options);

  EXPECT_NE(inc_registry.find_counter("placement/hybrid/heap/reevaluations"),
            nullptr);
  EXPECT_NE(inc_registry.find_counter("placement/hybrid/heap/invalidations"),
            nullptr);
  EXPECT_NE(
      inc_registry.find_counter("placement/hybrid/heap/stale_discarded"),
      nullptr);
  EXPECT_NE(inc_registry.find_gauge("placement/hybrid/heap/peak_size"),
            nullptr);
  EXPECT_NE(
      inc_registry.find_series("placement/hybrid/heap/invalidated_per_commit"),
      nullptr);
  // Both engines report the shared curve-saturation counter.
  EXPECT_NE(ref_registry.find_counter("model/curve_clamped"), nullptr);
  EXPECT_NE(inc_registry.find_counter("model/curve_clamped"), nullptr);

  // The incremental engine must never evaluate more candidates than the
  // reference (the scaling bench asserts the >= 10x reduction at size).
  const auto* ref_evals =
      ref_registry.find_counter("placement/hybrid/candidates_evaluated");
  const auto* inc_evals =
      inc_registry.find_counter("placement/hybrid/candidates_evaluated");
  ASSERT_NE(ref_evals, nullptr);
  ASSERT_NE(inc_evals, nullptr);
  EXPECT_LE(inc_evals->value(), ref_evals->value());
}

EngineRun run_greedy_global(const cdn::sys::CdnSystem& system,
                            GreedyGlobalOptions options,
                            PlacementEngine engine) {
  cdn::obs::Registry registry;
  options.engine = engine;
  options.metrics = &registry;
  EngineRun run{greedy_global(system, options), {}, {}};
  const auto* log = registry.find_table("placement/greedy_global/iterations");
  if (log != nullptr) {
    run.log_columns = log->columns();
    run.log_rows = log->rows();
  }
  return run;
}

TEST(PlacementEngineEquivalenceTest, GreedyGlobalDefaultOptions) {
  const auto t = TestSystem::make();
  const EngineRun ref =
      run_greedy_global(*t.system, {}, PlacementEngine::kReference);
  const EngineRun inc =
      run_greedy_global(*t.system, {}, PlacementEngine::kIncremental);
  expect_equivalent(*t.system, ref, inc);
  EXPECT_GT(ref.result.replicas_created, 0u);
}

TEST(PlacementEngineEquivalenceTest, GreedyGlobalMaxReplicasCap) {
  const auto t = TestSystem::make();
  GreedyGlobalOptions options;
  options.max_replicas = 3;
  const EngineRun ref =
      run_greedy_global(*t.system, options, PlacementEngine::kReference);
  const EngineRun inc =
      run_greedy_global(*t.system, options, PlacementEngine::kIncremental);
  expect_equivalent(*t.system, ref, inc);
}

TEST(PlacementEngineEquivalenceTest, GreedyGlobalRandomizedSystems) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto t = TestSystem::make(3 + seed % 6, 4 + seed % 5, 1 + seed % 3,
                                    100, 0.05 + 0.03 * static_cast<double>(
                                                           seed % 7),
                                    2.0 + static_cast<double>(seed % 9),
                                    seed);
    const EngineRun ref =
        run_greedy_global(*t.system, {}, PlacementEngine::kReference);
    const EngineRun inc =
        run_greedy_global(*t.system, {}, PlacementEngine::kIncremental);
    expect_equivalent(*t.system, ref, inc);
  }
}

struct LocalSearchRun {
  PlacementResult result;
  cdn::placement::LocalSearchStats stats;
  std::vector<std::vector<double>> swap_rows;
};

LocalSearchRun run_local_search(const cdn::sys::CdnSystem& system,
                                LocalSearchOptions options,
                                PlacementEngine engine) {
  // Both greedy_global engines are bit-identical, so each run starts the
  // refinement from the same placement.
  GreedyGlobalOptions start_options;
  start_options.max_replicas = 4;  // leave slack so swaps exist
  LocalSearchRun run{greedy_global(system, start_options), {}, {}};
  cdn::obs::Registry registry;
  options.engine = engine;
  options.metrics = &registry;
  run.stats = local_search_refine(system, run.result, options);
  const auto* log = registry.find_table("placement/local_search/swaps");
  if (log != nullptr) run.swap_rows = log->rows();
  return run;
}

TEST(PlacementEngineEquivalenceTest, LocalSearchSwapsAreBitIdentical) {
  const auto t = TestSystem::make();
  const LocalSearchRun ref =
      run_local_search(*t.system, {}, PlacementEngine::kReference);
  const LocalSearchRun inc =
      run_local_search(*t.system, {}, PlacementEngine::kIncremental);
  EXPECT_EQ(ref.stats.swaps_applied, inc.stats.swaps_applied);
  EXPECT_EQ(ref.stats.initial_cost, inc.stats.initial_cost);
  EXPECT_EQ(ref.stats.final_cost, inc.stats.final_cost);
  EXPECT_EQ(ref.result.predicted_total_cost,
            inc.result.predicted_total_cost);
  ASSERT_EQ(ref.swap_rows.size(), inc.swap_rows.size());
  for (std::size_t r = 0; r < ref.swap_rows.size(); ++r) {
    ASSERT_EQ(ref.swap_rows[r].size(), inc.swap_rows[r].size());
    for (std::size_t c = 0; c < ref.swap_rows[r].size(); ++c) {
      EXPECT_EQ(ref.swap_rows[r][c], inc.swap_rows[r][c])
          << "swap row " << r << " column " << c;
    }
  }
  const std::size_t n = t.system->server_count();
  const std::size_t m = t.system->site_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(ref.result.placement.is_replicated(
                    static_cast<cdn::sys::ServerIndex>(i),
                    static_cast<cdn::sys::SiteIndex>(j)),
                inc.result.placement.is_replicated(
                    static_cast<cdn::sys::ServerIndex>(i),
                    static_cast<cdn::sys::SiteIndex>(j)));
    }
  }
}

TEST(PlacementEngineEquivalenceTest, LocalSearchRandomizedSystems) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto t = TestSystem::make(3 + seed % 4, 4 + seed % 3, 1, 100,
                                    0.1 + 0.05 * static_cast<double>(
                                                     seed % 4),
                                    3.0 + static_cast<double>(seed % 5),
                                    seed);
    LocalSearchOptions options;
    options.max_swaps = 3;
    const LocalSearchRun ref =
        run_local_search(*t.system, options, PlacementEngine::kReference);
    const LocalSearchRun inc =
        run_local_search(*t.system, options, PlacementEngine::kIncremental);
    EXPECT_EQ(ref.stats.swaps_applied, inc.stats.swaps_applied);
    EXPECT_EQ(ref.stats.final_cost, inc.stats.final_cost);
    ASSERT_EQ(ref.swap_rows.size(), inc.swap_rows.size());
    for (std::size_t r = 0; r < ref.swap_rows.size(); ++r) {
      for (std::size_t c = 0; c < ref.swap_rows[r].size(); ++c) {
        EXPECT_EQ(ref.swap_rows[r][c], inc.swap_rows[r][c]);
      }
    }
  }
}

TEST(PlacementEngineEquivalenceTest, HybridRandomizedSystems) {
  // Property check: bit-identity must hold across topologies, storage
  // pressures and demand skews, not just the default fixture.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::size_t servers = 3 + seed % 6;              // 3..8
    const std::size_t low_sites = 4 + seed % 5;            // 4..8
    const std::size_t high_sites = 1 + seed % 3;           // 1..3
    const double storage_fraction = 0.05 + 0.03 * static_cast<double>(
                                               seed % 7);  // 0.05..0.23
    const double primary_hops = 2.0 + static_cast<double>(seed % 9);
    const auto t = TestSystem::make(servers, low_sites, high_sites, 100,
                                    storage_fraction, primary_hops, seed);
    HybridGreedyOptions options;
    if (seed % 3 == 0) options.pb_mode = cdn::model::PbMode::kPerIteration;
    if (seed % 4 == 0) options.add_cost_per_byte = 1e-10;
    const EngineRun ref =
        run_hybrid(*t.system, options, PlacementEngine::kReference);
    const EngineRun inc =
        run_hybrid(*t.system, options, PlacementEngine::kIncremental);
    expect_equivalent(*t.system, ref, inc);
  }
}

}  // namespace
