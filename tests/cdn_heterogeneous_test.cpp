// Tests for heterogeneous server capacities — the model and algorithms
// accept per-server budgets even though the paper evaluates homogeneous
// servers ("we consider the case of homogeneous servers").

#include <gtest/gtest.h>

#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::test::TestSystem;

/// Rebuilds the fixture's system with explicit per-server budgets.
sys::CdnSystem heterogeneous_system(const TestSystem& t,
                                    std::vector<std::uint64_t> storage) {
  return sys::CdnSystem(*t.catalog, *t.demand, *t.distances,
                        std::move(storage));
}

TEST(HeterogeneousTest, ExplicitBudgetsAreHonoured) {
  const auto t = TestSystem::make();
  const std::uint64_t total = t.catalog->total_bytes();
  const std::vector<std::uint64_t> storage{total / 4, total / 20, total / 20,
                                           total / 100};
  const auto system = heterogeneous_system(t, storage);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(system.server_storage(static_cast<sys::ServerIndex>(i)),
              storage[i]);
  }
}

TEST(HeterogeneousTest, BigServerAttractsMoreReplicas) {
  const auto t = TestSystem::make();
  const std::uint64_t total = t.catalog->total_bytes();
  // Server 0 has 20x the budget of the others.
  const std::vector<std::uint64_t> storage{total / 5, total / 100,
                                           total / 100, total / 100};
  const auto system = heterogeneous_system(t, storage);
  const auto result = placement::greedy_global(system);
  std::size_t big = 0, small = 0;
  for (std::size_t j = 0; j < system.site_count(); ++j) {
    const auto site = static_cast<sys::SiteIndex>(j);
    big += result.placement.is_replicated(0, site);
    small += result.placement.is_replicated(1, site);
  }
  EXPECT_GT(big, small);
}

TEST(HeterogeneousTest, HybridStillBeatsReplication) {
  const auto t = TestSystem::make();
  const std::uint64_t total = t.catalog->total_bytes();
  const std::vector<std::uint64_t> storage{total / 8, total / 16, total / 32,
                                           total / 64};
  const auto system = heterogeneous_system(t, storage);
  const auto hybrid = placement::hybrid_greedy(system);
  const auto repl = placement::greedy_global(system);
  EXPECT_LE(hybrid.predicted_total_cost, repl.predicted_total_cost);

  sim::SimulationConfig cfg;
  cfg.total_requests = 500'000;
  cfg.seed = 77;
  const auto hybrid_report = sim::simulate(system, hybrid, cfg);
  const auto repl_report = sim::simulate(system, repl, cfg);
  EXPECT_LT(hybrid_report.mean_latency_ms, repl_report.mean_latency_ms);
}

TEST(HeterogeneousTest, ZeroBudgetServerGetsNothing) {
  const auto t = TestSystem::make();
  const std::uint64_t total = t.catalog->total_bytes();
  const std::vector<std::uint64_t> storage{total / 10, 0, total / 10,
                                           total / 10};
  const auto system = heterogeneous_system(t, storage);
  const auto result = placement::hybrid_greedy(system);
  for (std::size_t j = 0; j < system.site_count(); ++j) {
    EXPECT_FALSE(
        result.placement.is_replicated(1, static_cast<sys::SiteIndex>(j)));
  }
  EXPECT_EQ(result.cache_bytes(1), 0u);
  // And its modelled hit ratios are zero (no cache space at all).
  for (std::size_t j = 0; j < system.site_count(); ++j) {
    EXPECT_DOUBLE_EQ(result.hit(1, static_cast<sys::SiteIndex>(j)), 0.0);
  }
}

TEST(HeterogeneousTest, BudgetVectorLengthValidated) {
  const auto t = TestSystem::make();
  EXPECT_THROW(heterogeneous_system(t, {100, 100}), cdn::PreconditionError);
}

}  // namespace
