// Unit tests for the read+update FAP objective ([19, 28]).

#include <gtest/gtest.h>

#include "src/placement/greedy_global.h"
#include "src/placement/update_aware.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::test::TestSystem;

TEST(UpdateAwareTest, ZeroRatesMatchGreedyGlobal) {
  const auto t = TestSystem::make();
  const auto plain = placement::greedy_global(*t.system);
  const auto aware = placement::update_aware_greedy(*t.system, {});
  EXPECT_EQ(aware.replicas_created, plain.replicas_created);
  EXPECT_NEAR(aware.predicted_total_cost, plain.predicted_total_cost,
              1e-6 * plain.predicted_total_cost);
}

TEST(UpdateAwareTest, UpdatesSuppressReplication) {
  const auto t = TestSystem::make();
  const auto plain = placement::update_aware_greedy(*t.system, {});
  placement::UpdateAwareOptions writes;
  // Update volume of 2x the read volume: most replicas stop paying off
  // (each write must travel primary -> replica, each saved read only
  // skips the shorter replica hop).
  writes.update_rates.assign(t.system->site_count(), 0.0);
  for (std::size_t j = 0; j < t.system->site_count(); ++j) {
    writes.update_rates[j] =
        2.0 * t.system->demand().site_total(static_cast<sys::SiteIndex>(j));
  }
  const auto constrained =
      placement::update_aware_greedy(*t.system, writes);
  EXPECT_LT(constrained.replicas_created, plain.replicas_created);
}

TEST(UpdateAwareTest, ExtremeUpdateRateForbidsAllReplicas) {
  const auto t = TestSystem::make();
  placement::UpdateAwareOptions writes;
  writes.update_rates.assign(t.system->site_count(), 1e12);
  const auto result = placement::update_aware_greedy(*t.system, writes);
  EXPECT_EQ(result.replicas_created, 0u);
}

TEST(UpdateAwareTest, PerSiteRatesAreSelective) {
  // Make ONE hot site extremely write-heavy: it must lose its replicas
  // while other sites keep theirs.
  const auto t = TestSystem::make();
  const auto plain = placement::greedy_global(*t.system);
  sys::SiteIndex victim = 0;
  for (std::size_t j = 0; j < t.system->site_count(); ++j) {
    if (plain.placement.replicas_of_site(static_cast<sys::SiteIndex>(j)) >
        0) {
      victim = static_cast<sys::SiteIndex>(j);
      break;
    }
  }
  placement::UpdateAwareOptions writes;
  writes.update_rates.assign(t.system->site_count(), 0.0);
  writes.update_rates[victim] = 1e12;
  const auto result = placement::update_aware_greedy(*t.system, writes);
  EXPECT_EQ(result.placement.replicas_of_site(victim), 0u);
  EXPECT_GT(result.replicas_created, 0u);
}

TEST(UpdateAwareTest, PropagationCostFormula) {
  const auto t = TestSystem::make();
  sys::ReplicaPlacement placement(t.system->server_storage(),
                                  t.system->site_bytes());
  placement.add(0, 0);
  placement.add(2, 0);
  std::vector<double> rates(t.system->site_count(), 0.0);
  rates[0] = 10.0;
  const double expected =
      10.0 * (t.system->distances().server_to_primary(0, 0) +
              t.system->distances().server_to_primary(2, 0));
  EXPECT_DOUBLE_EQ(
      placement::update_propagation_cost(*t.system, placement, rates),
      expected);
}

TEST(UpdateAwareTest, EmptyRatesMeanZeroCost) {
  const auto t = TestSystem::make();
  sys::ReplicaPlacement placement(t.system->server_storage(),
                                  t.system->site_bytes());
  placement.add(0, 0);
  EXPECT_DOUBLE_EQ(
      placement::update_propagation_cost(*t.system, placement, {}), 0.0);
}

TEST(UpdateAwareTest, RejectsBadRates) {
  const auto t = TestSystem::make();
  placement::UpdateAwareOptions wrong_len;
  wrong_len.update_rates = {1.0, 2.0};
  EXPECT_THROW(placement::update_aware_greedy(*t.system, wrong_len),
               cdn::PreconditionError);
  placement::UpdateAwareOptions negative;
  negative.update_rates.assign(t.system->site_count(), -1.0);
  EXPECT_THROW(placement::update_aware_greedy(*t.system, negative),
               cdn::PreconditionError);
}

}  // namespace
