// SpanTracer: Chrome trace-event export, ring-buffer overflow semantics,
// thread attribution, interning, and the zero-cost-when-disabled contract.

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "src/obs/span.h"

namespace cdn::obs {
namespace {

// --- Minimal JSON parser (objects, arrays, strings, numbers, bools) -----
//
// The exporter only ever *writes* JSON, so the repo has no parser; this
// test carries its own tiny recursive-descent one to validate the trace
// document actually parses back — not just that substrings appear.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonObject>, std::shared_ptr<JsonArray>>
      v = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& why) {
    if (!failed_) {
      failed_ = true;
      error_ = why + " at offset " + std::to_string(pos_);
    }
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                   s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  JsonValue value() {
    skip_ws();
    if (failed_) return {};
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue{string()};
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue{true};
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue{false};
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{nullptr};
    }
    return number();
  }

  JsonValue object() {
    auto obj = std::make_shared<JsonObject>();
    if (!consume('{')) fail("expected '{'");
    if (consume('}')) return JsonValue{obj};
    do {
      skip_ws();
      if (peek() != '"') {
        fail("expected object key");
        return {};
      }
      std::string key = string();
      if (!consume(':')) fail("expected ':'");
      (*obj)[key] = value();
      if (failed_) return {};
    } while (consume(','));
    if (!consume('}')) fail("expected '}'");
    return JsonValue{obj};
  }

  JsonValue array() {
    auto arr = std::make_shared<JsonArray>();
    if (!consume('[')) fail("expected '['");
    if (consume(']')) return JsonValue{arr};
    do {
      arr->push_back(value());
      if (failed_) return {};
    } while (consume(','));
    if (!consume(']')) fail("expected ']'");
    return JsonValue{arr};
  }

  std::string string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u':
            pos_ += 4;  // tests only use ASCII; skip the code point
            out += '?';
            break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) {
      fail("unterminated string");
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
      return {};
    }
    return JsonValue{std::stod(s_.substr(start, pos_ - start))};
  }

  const std::string s_;  // by value: callers pass temporaries
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

JsonValue parse_trace(const SpanTracer& tracer) {
  JsonParser parser(tracer.to_chrome_json());
  JsonValue doc = parser.parse();
  EXPECT_FALSE(parser.failed()) << parser.error();
  return doc;
}

// Returns the trace events with the given "ph", excluding metadata.
std::vector<JsonObject> events_of_phase(const JsonValue& doc,
                                        const std::string& ph) {
  std::vector<JsonObject> out;
  for (const auto& e : doc.object().at("traceEvents").array()) {
    const auto& obj = e.object();
    if (obj.at("ph").str() == ph) out.push_back(obj);
  }
  return out;
}

// -----------------------------------------------------------------------

TEST(SpanTracerTest, ExportsParseableChromeTraceJson) {
  SpanTracer tracer;
  tracer.set_thread_name("main");
  {
    ScopedSpan outer(&tracer, "outer", "test");
    outer.arg("items", 3.0);
    { ScopedSpan inner(&tracer, "inner", "test"); }
    tracer.instant("marker", "test", "request", 42.0);
    tracer.counter("depth", 7.0);
  }

  const JsonValue doc = parse_trace(tracer);
  ASSERT_TRUE(doc.is_object());
  const auto& root = doc.object();
  ASSERT_TRUE(root.count("traceEvents"));
  EXPECT_EQ(root.at("displayTimeUnit").str(), "ms");
  EXPECT_EQ(root.at("otherData").object().at("dropped_events").number(), 0.0);

  const auto complete = events_of_phase(doc, "X");
  ASSERT_EQ(complete.size(), 2u);
  const auto instants = events_of_phase(doc, "i");
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(instants[0].at("name").str(), "marker");
  EXPECT_EQ(instants[0].at("s").str(), "t");
  EXPECT_EQ(instants[0].at("args").object().at("request").number(), 42.0);
  const auto counters = events_of_phase(doc, "C");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].at("name").str(), "depth");
  EXPECT_EQ(counters[0].at("args").object().at("value").number(), 7.0);

  // Thread-name metadata names the main track.
  const auto meta = events_of_phase(doc, "M");
  ASSERT_GE(meta.size(), 1u);
  EXPECT_EQ(meta[0].at("name").str(), "thread_name");
  EXPECT_EQ(meta[0].at("args").object().at("name").str(), "main");
}

TEST(SpanTracerTest, NestedSpansAreTimeContainedOnOneTrack) {
  SpanTracer tracer;
  {
    ScopedSpan outer(&tracer, "outer", "test");
    { ScopedSpan inner(&tracer, "inner", "test"); }
  }
  const JsonValue doc = parse_trace(tracer);
  const auto complete = events_of_phase(doc, "X");
  ASSERT_EQ(complete.size(), 2u);
  // Inner closes first, so it exports first only if its ts is smaller —
  // identify by name instead of position.
  const JsonObject* outer = nullptr;
  const JsonObject* inner = nullptr;
  for (const auto& e : complete) {
    (e.at("name").str() == "outer" ? outer : inner) = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->at("tid").number(), inner->at("tid").number());
  const double outer_start = outer->at("ts").number();
  const double outer_end = outer_start + outer->at("dur").number();
  const double inner_start = inner->at("ts").number();
  const double inner_end = inner_start + inner->at("dur").number();
  EXPECT_LE(outer_start, inner_start);
  EXPECT_LE(inner_end, outer_end);
}

TEST(SpanTracerTest, WorkerThreadsGetTheirOwnTids) {
  SpanTracer tracer;
  tracer.set_thread_name("main");
  tracer.instant("on-main", "test");
  std::thread worker([&] {
    tracer.set_thread_name("worker");
    tracer.instant("on-worker", "test");
  });
  worker.join();  // export only after the writer has finished

  const JsonValue doc = parse_trace(tracer);
  const auto instants = events_of_phase(doc, "i");
  ASSERT_EQ(instants.size(), 2u);
  double main_tid = -1.0, worker_tid = -1.0;
  for (const auto& e : instants) {
    (e.at("name").str() == "on-main" ? main_tid : worker_tid) =
        e.at("tid").number();
  }
  EXPECT_NE(main_tid, worker_tid);

  std::map<double, std::string> track_names;
  for (const auto& m : events_of_phase(doc, "M")) {
    track_names[m.at("tid").number()] =
        m.at("args").object().at("name").str();
  }
  EXPECT_EQ(track_names[main_tid], "main");
  EXPECT_EQ(track_names[worker_tid], "worker");
}

TEST(SpanTracerTest, SameThreadKeepsItsTidAcrossTracers) {
  // Two tracers alive in one thread: each keeps its own buffer, and the
  // TLS fast-path cache must not leak events from one into the other.
  SpanTracer a;
  SpanTracer b;
  a.instant("in-a", "test");
  b.instant("in-b", "test");
  a.instant("in-a-again", "test");
  EXPECT_EQ(a.recorded(), 2u);
  EXPECT_EQ(b.recorded(), 1u);
}

TEST(SpanTracerTest, RingOverflowKeepsNewestEvents) {
  SpanTracer tracer(/*events_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    tracer.instant("tick", "test", "i", static_cast<double>(i));
  }
  EXPECT_EQ(tracer.recorded(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 8u);
  // The retained window is the 8 newest ticks: 12..19, oldest first.
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].arg_value, static_cast<double>(12 + k));
  }
  const JsonValue doc = parse_trace(tracer);
  EXPECT_EQ(doc.object().at("otherData").object().at("dropped_events")
                .number(),
            12.0);
}

TEST(SpanTracerTest, EventsAreSortedByTimestamp) {
  SpanTracer tracer;
  ScopedSpan s1(&tracer, "a", "test");
  s1.stop();  // recorded first but started earliest
  tracer.instant("b", "test");
  tracer.instant("c", "test");
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t k = 1; k < events.size(); ++k) {
    EXPECT_LE(events[k - 1].ts_ns, events[k].ts_ns);
  }
}

TEST(SpanTracerTest, InternReturnsStablePointers) {
  SpanTracer tracer;
  const char* p1 = tracer.intern("placement/hybrid/total");
  const char* p2 = tracer.intern("placement/hybrid/total");
  EXPECT_EQ(p1, p2);
  EXPECT_STREQ(p1, "placement/hybrid/total");
  // Force interned_ growth; earlier pointers must stay valid.
  for (int i = 0; i < 100; ++i) {
    tracer.intern("name/" + std::to_string(i));
  }
  EXPECT_EQ(tracer.intern("placement/hybrid/total"), p1);
  EXPECT_STREQ(p1, "placement/hybrid/total");
}

TEST(SpanTracerTest, NullTracerIsANoOp) {
  // The disabled path must not crash, not allocate a buffer anywhere, and
  // arg()/stop() must stay callable.
  ScopedSpan span(nullptr, "never-recorded", "test");
  span.arg("x", 1.0);
  span.stop();
  span.stop();  // idempotent
}

TEST(SpanTracerTest, ScopedSpanStopIsIdempotent) {
  SpanTracer tracer;
  ScopedSpan span(&tracer, "once", "test");
  span.stop();
  span.stop();
  EXPECT_EQ(tracer.recorded(), 1u);  // dtor must not double-record either
}

TEST(SpanTracerTest, WriteJsonFileRoundTrips) {
  SpanTracer tracer;
  { ScopedSpan span(&tracer, "phase", "test"); }
  const std::string path =
      testing::TempDir() + "/span_test_trace.trace.json";
  tracer.write_json_file(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  JsonParser parser(text);
  const JsonValue doc = parser.parse();
  EXPECT_FALSE(parser.failed()) << parser.error();
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(events_of_phase(doc, "X").size(), 1u);
}

}  // namespace
}  // namespace cdn::obs
