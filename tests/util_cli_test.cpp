// Unit tests for the CLI flag parser.

#include <gtest/gtest.h>

#include "src/util/cli.h"
#include "src/util/error.h"

namespace {

using cdn::util::CliParser;

CliParser make_parser() {
  CliParser cli("test tool");
  cli.add_flag("alpha", "1.5", "a double");
  cli.add_flag("count", "10", "an int");
  cli.add_flag("name", "abc", "a string");
  cli.add_flag("verbose", "false", "a bool");
  return cli;
}

TEST(CliParserTest, DefaultsApplyWithoutArgs) {
  auto cli = make_parser();
  const char* argv[] = {"tool"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 1.5);
  EXPECT_EQ(cli.get_int("count"), 10);
  EXPECT_EQ(cli.get_string("name"), "abc");
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(CliParserTest, EqualsSyntax) {
  auto cli = make_parser();
  const char* argv[] = {"tool", "--alpha=2.25", "--name=xyz"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 2.25);
  EXPECT_EQ(cli.get_string("name"), "xyz");
}

TEST(CliParserTest, SpaceSyntax) {
  auto cli = make_parser();
  const char* argv[] = {"tool", "--count", "42"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("count"), 42);
}

TEST(CliParserTest, BareFlagIsTrue) {
  auto cli = make_parser();
  const char* argv[] = {"tool", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliParserTest, BareFlagFollowedByAnotherFlag) {
  auto cli = make_parser();
  const char* argv[] = {"tool", "--verbose", "--count", "7"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_int("count"), 7);
}

TEST(CliParserTest, PositionalArgumentsCollected) {
  auto cli = make_parser();
  const char* argv[] = {"tool", "input.txt", "--count=1", "more"};
  ASSERT_TRUE(cli.parse(4, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "more");
}

TEST(CliParserTest, UnknownFlagFailsParse) {
  auto cli = make_parser();
  const char* argv[] = {"tool", "--bogus=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParserTest, HelpStopsParsing) {
  auto cli = make_parser();
  const char* argv[] = {"tool", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParserTest, MalformedNumbersThrowOnAccess) {
  auto cli = make_parser();
  const char* argv[] = {"tool", "--alpha=not-a-number", "--count=1.5"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_double("alpha"), cdn::PreconditionError);
  EXPECT_THROW(cli.get_int("count"), cdn::PreconditionError);
}

TEST(CliParserTest, BoolSpellings) {
  auto cli = make_parser();
  const char* argv[] = {"tool", "--verbose=yes"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
  auto cli2 = make_parser();
  const char* argv2[] = {"tool", "--verbose=0"};
  ASSERT_TRUE(cli2.parse(2, argv2));
  EXPECT_FALSE(cli2.get_bool("verbose"));
}

TEST(CliParserTest, UnregisteredAccessThrows) {
  auto cli = make_parser();
  const char* argv[] = {"tool"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW(cli.get_string("nope"), cdn::PreconditionError);
}

TEST(CliParserTest, DuplicateRegistrationThrows) {
  CliParser cli("x");
  cli.add_flag("a", "1", "first");
  EXPECT_THROW(cli.add_flag("a", "2", "again"), cdn::PreconditionError);
}

TEST(CliParserTest, UsageMentionsAllFlags) {
  const auto cli = make_parser();
  const auto text = cli.usage();
  for (const char* flag : {"--alpha", "--count", "--name", "--verbose"}) {
    EXPECT_NE(text.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
