// Unit tests for client populations, DNS first-hop mapping, and load-aware
// server selection.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/scenario.h"
#include "src/placement/fixed_split.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/redirect/client_population.h"
#include "src/redirect/server_selection.h"
#include "src/topology/shortest_paths.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::test::TestSystem;

/// Path graph 0-1-2-3-4 with servers at nodes 0 and 4.
struct LineFixture {
  topology::Graph graph{5};
  std::vector<topology::NodeId> servers{0, 4};

  LineFixture() {
    for (topology::NodeId v = 0; v + 1 < 5; ++v) graph.add_edge(v, v + 1);
  }
};

TEST(ClientPopulationTest, NearestServerAssignment) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  const redirect::ClientPopulation clients(hops);
  EXPECT_EQ(clients.first_hop(1), 0u);  // 1 hop to server 0, 3 to server 4
  EXPECT_EQ(clients.first_hop(3), 1u);
  // Node 2 is equidistant: deterministic tie-break to the lower index.
  EXPECT_EQ(clients.first_hop(2), 0u);
}

TEST(ClientPopulationTest, DefaultWeightsExcludeServers) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  const redirect::ClientPopulation clients(hops);
  EXPECT_DOUBLE_EQ(clients.weight(0), 0.0);
  EXPECT_DOUBLE_EQ(clients.weight(4), 0.0);
  // Remaining three nodes share the mass equally.
  EXPECT_NEAR(clients.weight(1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(clients.server_share(0) + clients.server_share(1), 1.0, 1e-12);
  EXPECT_NEAR(clients.server_share(0), 2.0 / 3.0, 1e-12);  // nodes 1 and 2
}

TEST(ClientPopulationTest, MeanAccessHops) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  const redirect::ClientPopulation clients(hops);
  // Nodes 1, 2, 3 at distances 1, 2, 1 from their first hops.
  EXPECT_NEAR(clients.mean_access_hops(), (1.0 + 2.0 + 1.0) / 3.0, 1e-12);
}

TEST(ClientPopulationTest, CustomWeightsShiftShares) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  std::vector<double> weights{0.0, 0.0, 0.0, 10.0, 0.0};  // all mass at 3
  const redirect::ClientPopulation clients(hops, std::move(weights));
  EXPECT_DOUBLE_EQ(clients.server_share(1), 1.0);
  EXPECT_DOUBLE_EQ(clients.server_share(0), 0.0);
}

TEST(ClientPopulationTest, DerivedDemandFollowsShares) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  const redirect::ClientPopulation clients(hops);

  workload::SurgeParams params;
  params.objects_per_site = 20;
  const std::vector<workload::PopularityClass> classes{{4, 1.0, "x"}};
  util::Rng rng(1);
  const auto catalog =
      workload::SiteCatalog::generate(params, classes, rng);
  const auto demand =
      clients.derive_demand(catalog, 9000.0, rng, /*jitter=*/0.0);
  EXPECT_NEAR(demand.total(), 9000.0, 1e-6);
  // Server 0 owns 2/3 of the clients.
  EXPECT_NEAR(demand.server_total(0), 6000.0, 1e-6);
  EXPECT_NEAR(demand.server_total(1), 3000.0, 1e-6);
}

TEST(ClientPopulationTest, RejectsBadInput) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  EXPECT_THROW(
      redirect::ClientPopulation(hops, std::vector<double>{1.0, 2.0}),
      cdn::PreconditionError);
  EXPECT_THROW(redirect::ClientPopulation(
                   hops, std::vector<double>{0, 0, 0, 0, 0}),
               cdn::PreconditionError);
  EXPECT_THROW(redirect::ClientPopulation(
                   hops, std::vector<double>{1, 1, -1, 1, 1}),
               cdn::PreconditionError);
}

TEST(ClientPopulationScenarioTest, ScenarioDemandModelWorksEndToEnd) {
  core::ScenarioConfig cfg;
  cfg.topology = {.transit_domains = 2,
                  .transit_nodes_per_domain = 2,
                  .stub_domains_per_transit_node = 2,
                  .nodes_per_stub_domain = 8};
  cfg.server_count = 5;
  cfg.surge.objects_per_site = 100;
  cfg.classes = {{4, 1.0, "low"}, {2, 8.0, "high"}};
  cfg.demand_model = core::DemandModel::kClientPopulation;
  cfg.seed = 5;
  const core::Scenario scenario(cfg);
  EXPECT_NEAR(scenario.demand().total(), cfg.demand_total, 1e-6);
  // Demand shares are topology-driven, hence uneven across servers.
  double lo = 1e18, hi = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    const double s =
        scenario.demand().server_total(static_cast<workload::ServerId>(i));
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_GT(hi, lo * 1.05);
}

TEST(ServerSelectionTest, NearestPolicyMatchesNearestIndexCosts) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  redirect::SelectionParams params;
  params.policy = redirect::SelectionPolicy::kNearest;
  const auto sel = redirect::assign_miss_traffic(*t.system, placement, params);
  // Network hops of the nearest rule == the model's cost per *redirected*
  // request; cross-check through total cost.
  double redirected = 0.0, cost = 0.0;
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    for (std::size_t j = 0; j < t.system->site_count(); ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (placement.placement.is_replicated(server, site)) continue;
      const double f = t.system->demand().requests(server, site);
      redirected += f;
      cost += f * placement.nearest.cost(server, site);
    }
  }
  EXPECT_NEAR(sel.mean_network_hops, cost / redirected, 1e-9);
}

TEST(ServerSelectionTest, LoadAwareReducesPeakUtilization) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  redirect::SelectionParams nearest;
  nearest.policy = redirect::SelectionPolicy::kNearest;
  redirect::SelectionParams aware;
  aware.policy = redirect::SelectionPolicy::kLoadAware;
  const auto a = redirect::assign_miss_traffic(*t.system, placement, nearest);
  const auto b = redirect::assign_miss_traffic(*t.system, placement, aware);
  EXPECT_LE(b.max_server_utilization, a.max_server_utilization + 1e-9);
  // Balancing may pay some extra network distance.
  EXPECT_GE(b.mean_network_hops, a.mean_network_hops - 1e-9);
}

TEST(ServerSelectionTest, FlowConservation) {
  const auto t = TestSystem::make();
  const auto placement = placement::hybrid_greedy(*t.system);
  const auto sel = redirect::assign_miss_traffic(*t.system, placement);
  double assigned = 0.0;
  for (double f : sel.server_flow) assigned += f;
  for (double f : sel.primary_flow) assigned += f;
  double expected = 0.0;
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    for (std::size_t j = 0; j < t.system->site_count(); ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (placement.placement.is_replicated(server, site)) continue;
      expected += t.system->demand().requests(server, site) *
                  (1.0 - placement.hit(server, site));
    }
  }
  EXPECT_NEAR(assigned, expected, 1e-6 * expected);
}

TEST(ServerSelectionTest, TightCapacitySpreadsLoad) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  redirect::SelectionParams tight;
  tight.policy = redirect::SelectionPolicy::kLoadAware;
  // Deliberately tight fleet: capacity ~ mean load.
  const auto nearest = redirect::assign_miss_traffic(
      *t.system, placement,
      {.policy = redirect::SelectionPolicy::kNearest});
  double total = 0.0;
  for (double f : nearest.server_flow) total += f;
  tight.server_capacity = 1.2 * total / static_cast<double>(
                                             t.system->server_count());
  tight.primary_capacity = tight.server_capacity * 4;
  const auto spread =
      redirect::assign_miss_traffic(*t.system, placement, tight);
  EXPECT_LT(spread.max_server_utilization, 1.0);
}

TEST(ServerSelectionTest, RejectsBadParams) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  redirect::SelectionParams bad;
  bad.iterations = 0;
  EXPECT_THROW(redirect::assign_miss_traffic(*t.system, placement, bad),
               cdn::PreconditionError);
  bad = {};
  bad.queue_weight = -1.0;
  EXPECT_THROW(redirect::assign_miss_traffic(*t.system, placement, bad),
               cdn::PreconditionError);
}

TEST(ServerSelectionTest, RejectsWrongHealthMaskLengths) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  const std::vector<std::uint8_t> short_mask(t.system->server_count() - 1, 1);
  redirect::SelectionParams p;
  p.server_up = &short_mask;
  EXPECT_THROW(redirect::assign_miss_traffic(*t.system, placement, p),
               cdn::PreconditionError);
  p = {};
  const std::vector<std::uint8_t> short_origin(t.system->site_count() - 1, 1);
  p.origin_up = &short_origin;
  EXPECT_THROW(redirect::assign_miss_traffic(*t.system, placement, p),
               cdn::PreconditionError);
}

TEST(ServerSelectionTest, DeadHolderReceivesNoFlow) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  std::vector<std::uint8_t> up(t.system->server_count(), 1);
  up[1] = 0;
  redirect::SelectionParams p;
  p.server_up = &up;
  const auto r = redirect::assign_miss_traffic(*t.system, placement, p);
  EXPECT_DOUBLE_EQ(r.server_flow[1], 0.0);
  // The dead server's own demand spilled somewhere — it shows up as
  // failed-over flow, and (origins are all up) none of it is lost.
  EXPECT_GT(r.failed_over_flow, 0.0);
  EXPECT_DOUBLE_EQ(r.unserved_flow, 0.0);
}

TEST(ServerSelectionTest, HealthyMaskMatchesNoMask) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  const std::vector<std::uint8_t> all_up(t.system->server_count(), 1);
  const std::vector<std::uint8_t> origins_up(t.system->site_count(), 1);
  redirect::SelectionParams masked;
  masked.server_up = &all_up;
  masked.origin_up = &origins_up;
  const auto a = redirect::assign_miss_traffic(*t.system, placement, {});
  const auto b = redirect::assign_miss_traffic(*t.system, placement, masked);
  EXPECT_DOUBLE_EQ(a.mean_response_cost, b.mean_response_cost);
  EXPECT_DOUBLE_EQ(a.mean_network_hops, b.mean_network_hops);
  EXPECT_EQ(a.server_flow, b.server_flow);
  EXPECT_DOUBLE_EQ(b.failed_over_flow, 0.0);
  EXPECT_DOUBLE_EQ(b.unserved_flow, 0.0);
}

TEST(ServerSelectionTest, FlowWithNoLiveCopyIsUnserved) {
  const auto t = TestSystem::make();
  // Pure caching: no replica holders, so a dead origin with a dead
  // first-hop server strands that server's demand.
  const auto placement = placement::pure_caching(*t.system);
  std::vector<std::uint8_t> up(t.system->server_count(), 1);
  up[0] = 0;
  std::vector<std::uint8_t> origins(t.system->site_count(), 1);
  origins[2] = 0;
  redirect::SelectionParams p;
  p.server_up = &up;
  p.origin_up = &origins;
  const auto r = redirect::assign_miss_traffic(*t.system, placement, p);
  EXPECT_GT(r.unserved_flow, 0.0);
  // Live servers' misses on site 2 are also unserved (nowhere to go).
  EXPECT_DOUBLE_EQ(r.primary_flow[2], 0.0);
}

TEST(ServerSelectionTest, AutoCapacityClampsToPositiveFloor) {
  // Zero demand => the nearest-copy pass assigns zero flow everywhere and
  // the auto capacity must fall back to its positive floor instead of 0
  // (which would divide by zero in the utilisation report).
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  const std::vector<double> zeros(
      t.system->server_count() * t.system->site_count(), 0.0);
  const auto no_demand = workload::DemandMatrix::from_values(
      t.system->server_count(), t.system->site_count(), zeros);
  const sys::CdnSystem quiet(*t.catalog, no_demand, *t.distances, 0.15);
  const auto r = redirect::assign_miss_traffic(quiet, placement, {});
  EXPECT_DOUBLE_EQ(r.max_server_utilization, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_server_utilization, 0.0);
  EXPECT_FALSE(std::isnan(r.mean_response_cost));
}

}  // namespace
