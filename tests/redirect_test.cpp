// Unit tests for client populations, DNS first-hop mapping, and load-aware
// server selection.

#include <gtest/gtest.h>

#include "src/core/scenario.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/redirect/client_population.h"
#include "src/redirect/server_selection.h"
#include "src/topology/shortest_paths.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::test::TestSystem;

/// Path graph 0-1-2-3-4 with servers at nodes 0 and 4.
struct LineFixture {
  topology::Graph graph{5};
  std::vector<topology::NodeId> servers{0, 4};

  LineFixture() {
    for (topology::NodeId v = 0; v + 1 < 5; ++v) graph.add_edge(v, v + 1);
  }
};

TEST(ClientPopulationTest, NearestServerAssignment) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  const redirect::ClientPopulation clients(hops);
  EXPECT_EQ(clients.first_hop(1), 0u);  // 1 hop to server 0, 3 to server 4
  EXPECT_EQ(clients.first_hop(3), 1u);
  // Node 2 is equidistant: deterministic tie-break to the lower index.
  EXPECT_EQ(clients.first_hop(2), 0u);
}

TEST(ClientPopulationTest, DefaultWeightsExcludeServers) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  const redirect::ClientPopulation clients(hops);
  EXPECT_DOUBLE_EQ(clients.weight(0), 0.0);
  EXPECT_DOUBLE_EQ(clients.weight(4), 0.0);
  // Remaining three nodes share the mass equally.
  EXPECT_NEAR(clients.weight(1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(clients.server_share(0) + clients.server_share(1), 1.0, 1e-12);
  EXPECT_NEAR(clients.server_share(0), 2.0 / 3.0, 1e-12);  // nodes 1 and 2
}

TEST(ClientPopulationTest, MeanAccessHops) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  const redirect::ClientPopulation clients(hops);
  // Nodes 1, 2, 3 at distances 1, 2, 1 from their first hops.
  EXPECT_NEAR(clients.mean_access_hops(), (1.0 + 2.0 + 1.0) / 3.0, 1e-12);
}

TEST(ClientPopulationTest, CustomWeightsShiftShares) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  std::vector<double> weights{0.0, 0.0, 0.0, 10.0, 0.0};  // all mass at 3
  const redirect::ClientPopulation clients(hops, std::move(weights));
  EXPECT_DOUBLE_EQ(clients.server_share(1), 1.0);
  EXPECT_DOUBLE_EQ(clients.server_share(0), 0.0);
}

TEST(ClientPopulationTest, DerivedDemandFollowsShares) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  const redirect::ClientPopulation clients(hops);

  workload::SurgeParams params;
  params.objects_per_site = 20;
  const std::vector<workload::PopularityClass> classes{{4, 1.0, "x"}};
  util::Rng rng(1);
  const auto catalog =
      workload::SiteCatalog::generate(params, classes, rng);
  const auto demand =
      clients.derive_demand(catalog, 9000.0, rng, /*jitter=*/0.0);
  EXPECT_NEAR(demand.total(), 9000.0, 1e-6);
  // Server 0 owns 2/3 of the clients.
  EXPECT_NEAR(demand.server_total(0), 6000.0, 1e-6);
  EXPECT_NEAR(demand.server_total(1), 3000.0, 1e-6);
}

TEST(ClientPopulationTest, RejectsBadInput) {
  LineFixture f;
  const topology::HopMatrix hops(f.graph, f.servers);
  EXPECT_THROW(
      redirect::ClientPopulation(hops, std::vector<double>{1.0, 2.0}),
      cdn::PreconditionError);
  EXPECT_THROW(redirect::ClientPopulation(
                   hops, std::vector<double>{0, 0, 0, 0, 0}),
               cdn::PreconditionError);
  EXPECT_THROW(redirect::ClientPopulation(
                   hops, std::vector<double>{1, 1, -1, 1, 1}),
               cdn::PreconditionError);
}

TEST(ClientPopulationScenarioTest, ScenarioDemandModelWorksEndToEnd) {
  core::ScenarioConfig cfg;
  cfg.topology = {.transit_domains = 2,
                  .transit_nodes_per_domain = 2,
                  .stub_domains_per_transit_node = 2,
                  .nodes_per_stub_domain = 8};
  cfg.server_count = 5;
  cfg.surge.objects_per_site = 100;
  cfg.classes = {{4, 1.0, "low"}, {2, 8.0, "high"}};
  cfg.demand_model = core::DemandModel::kClientPopulation;
  cfg.seed = 5;
  const core::Scenario scenario(cfg);
  EXPECT_NEAR(scenario.demand().total(), cfg.demand_total, 1e-6);
  // Demand shares are topology-driven, hence uneven across servers.
  double lo = 1e18, hi = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    const double s =
        scenario.demand().server_total(static_cast<workload::ServerId>(i));
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_GT(hi, lo * 1.05);
}

TEST(ServerSelectionTest, NearestPolicyMatchesNearestIndexCosts) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  redirect::SelectionParams params;
  params.policy = redirect::SelectionPolicy::kNearest;
  const auto sel = redirect::assign_miss_traffic(*t.system, placement, params);
  // Network hops of the nearest rule == the model's cost per *redirected*
  // request; cross-check through total cost.
  double redirected = 0.0, cost = 0.0;
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    for (std::size_t j = 0; j < t.system->site_count(); ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (placement.placement.is_replicated(server, site)) continue;
      const double f = t.system->demand().requests(server, site);
      redirected += f;
      cost += f * placement.nearest.cost(server, site);
    }
  }
  EXPECT_NEAR(sel.mean_network_hops, cost / redirected, 1e-9);
}

TEST(ServerSelectionTest, LoadAwareReducesPeakUtilization) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  redirect::SelectionParams nearest;
  nearest.policy = redirect::SelectionPolicy::kNearest;
  redirect::SelectionParams aware;
  aware.policy = redirect::SelectionPolicy::kLoadAware;
  const auto a = redirect::assign_miss_traffic(*t.system, placement, nearest);
  const auto b = redirect::assign_miss_traffic(*t.system, placement, aware);
  EXPECT_LE(b.max_server_utilization, a.max_server_utilization + 1e-9);
  // Balancing may pay some extra network distance.
  EXPECT_GE(b.mean_network_hops, a.mean_network_hops - 1e-9);
}

TEST(ServerSelectionTest, FlowConservation) {
  const auto t = TestSystem::make();
  const auto placement = placement::hybrid_greedy(*t.system);
  const auto sel = redirect::assign_miss_traffic(*t.system, placement);
  double assigned = 0.0;
  for (double f : sel.server_flow) assigned += f;
  for (double f : sel.primary_flow) assigned += f;
  double expected = 0.0;
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    for (std::size_t j = 0; j < t.system->site_count(); ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (placement.placement.is_replicated(server, site)) continue;
      expected += t.system->demand().requests(server, site) *
                  (1.0 - placement.hit(server, site));
    }
  }
  EXPECT_NEAR(assigned, expected, 1e-6 * expected);
}

TEST(ServerSelectionTest, TightCapacitySpreadsLoad) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  redirect::SelectionParams tight;
  tight.policy = redirect::SelectionPolicy::kLoadAware;
  // Deliberately tight fleet: capacity ~ mean load.
  const auto nearest = redirect::assign_miss_traffic(
      *t.system, placement,
      {.policy = redirect::SelectionPolicy::kNearest});
  double total = 0.0;
  for (double f : nearest.server_flow) total += f;
  tight.server_capacity = 1.2 * total / static_cast<double>(
                                             t.system->server_count());
  tight.primary_capacity = tight.server_capacity * 4;
  const auto spread =
      redirect::assign_miss_traffic(*t.system, placement, tight);
  EXPECT_LT(spread.max_server_utilization, 1.0);
}

TEST(ServerSelectionTest, RejectsBadParams) {
  const auto t = TestSystem::make();
  const auto placement = placement::greedy_global(*t.system);
  redirect::SelectionParams bad;
  bad.iterations = 0;
  EXPECT_THROW(redirect::assign_miss_traffic(*t.system, placement, bad),
               cdn::PreconditionError);
  bad = {};
  bad.queue_weight = -1.0;
  EXPECT_THROW(redirect::assign_miss_traffic(*t.system, placement, bad),
               cdn::PreconditionError);
}

}  // namespace
