// Unit tests for adaptive hybrid replanning under demand drift.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/core/scenario.h"
#include "src/placement/adaptive.h"
#include "src/placement/hybrid_greedy.h"
#include "src/redirect/server_selection.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::test::TestSystem;

/// New system with site `hot` scaled by `factor`, sharing t's components.
workload::DemandMatrix spike_demand(const TestSystem& t, workload::SiteId hot,
                                    double factor) {
  std::vector<double> values;
  const auto& demand = *t.demand;
  values.reserve(demand.server_count() * demand.site_count());
  for (std::size_t i = 0; i < demand.server_count(); ++i) {
    const auto row = demand.row(static_cast<workload::ServerId>(i));
    for (std::size_t j = 0; j < row.size(); ++j) {
      values.push_back(j == hot ? row[j] * factor : row[j]);
    }
  }
  return workload::DemandMatrix::from_values(demand.server_count(),
                                             demand.site_count(), values);
}

TEST(AdaptiveTest, NoDriftKeepsEverything) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  const auto outcome =
      placement::adaptive_hybrid_replan(*t.system, previous, {});
  EXPECT_EQ(outcome.replicas_dropped, 0u);
  // Replanning on identical demand cannot do worse than the original.
  EXPECT_LE(outcome.result.predicted_total_cost,
            previous.predicted_total_cost * 1.001);
}

TEST(AdaptiveTest, SpikeTriggersNewReplicas) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  const workload::SiteId hot = 0;  // a low-popularity site goes viral
  const auto spiked = spike_demand(t, hot, 80.0);
  const sys::CdnSystem new_system(*t.catalog, spiked, *t.distances, 0.15);

  const auto outcome =
      placement::adaptive_hybrid_replan(new_system, previous, {});
  EXPECT_GT(outcome.replicas_added, 0u);
  // The viral site must gain at least one replica somewhere.
  std::size_t viral_replicas = 0;
  for (std::size_t i = 0; i < new_system.server_count(); ++i) {
    viral_replicas += outcome.result.placement.is_replicated(
        static_cast<sys::ServerIndex>(i), hot);
  }
  EXPECT_GT(viral_replicas,
            previous.placement.replicas_of_site(hot));
}

TEST(AdaptiveTest, ReplanBeatsStalePlacement) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  const auto spiked = spike_demand(t, 0, 80.0);
  const sys::CdnSystem new_system(*t.catalog, spiked, *t.distances, 0.15);
  const auto outcome =
      placement::adaptive_hybrid_replan(new_system, previous, {});

  sim::SimulationConfig cfg;
  cfg.total_requests = 600'000;
  cfg.seed = 31;
  const auto stale = sim::simulate(new_system, previous, cfg);
  const auto replanned = sim::simulate(new_system, outcome.result, cfg);
  EXPECT_LT(replanned.mean_latency_ms, stale.mean_latency_ms);
}

TEST(AdaptiveTest, TransferCostSuppressesMarginalMoves) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  const auto spiked = spike_demand(t, 0, 80.0);
  const sys::CdnSystem new_system(*t.catalog, spiked, *t.distances, 0.15);

  const auto free =
      placement::adaptive_hybrid_replan(new_system, previous, {});
  placement::AdaptiveOptions expensive;
  expensive.transfer_cost_per_byte = 1.0;  // prohibitive
  const auto constrained =
      placement::adaptive_hybrid_replan(new_system, previous, expensive);
  EXPECT_LE(constrained.replicas_added, free.replicas_added);
  EXPECT_LE(constrained.bytes_transferred, free.bytes_transferred);
}

TEST(AdaptiveTest, CollapsedDemandDropsReplicas) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  ASSERT_GT(previous.replicas_created, 0u);
  // Find a site that actually got replicas, then kill its demand.
  workload::SiteId victim = 0;
  for (std::size_t j = 0; j < t.system->site_count(); ++j) {
    if (previous.placement.replicas_of_site(
            static_cast<sys::SiteIndex>(j)) > 0) {
      victim = static_cast<workload::SiteId>(j);
      break;
    }
  }
  const auto collapsed = spike_demand(t, victim, 1e-6);
  const sys::CdnSystem new_system(*t.catalog, collapsed, *t.distances, 0.15);
  const auto outcome =
      placement::adaptive_hybrid_replan(new_system, previous, {});
  EXPECT_GT(outcome.replicas_dropped, 0u);
  EXPECT_EQ(outcome.result.placement.replicas_of_site(victim), 0u);
}

TEST(AdaptiveTest, AccountingIsConsistent) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  const auto spiked = spike_demand(t, 1, 40.0);
  const sys::CdnSystem new_system(*t.catalog, spiked, *t.distances, 0.15);
  const auto outcome =
      placement::adaptive_hybrid_replan(new_system, previous, {});
  EXPECT_EQ(outcome.replicas_kept + outcome.replicas_dropped,
            previous.placement.replica_count());
  EXPECT_EQ(outcome.result.placement.replica_count(),
            outcome.replicas_kept + outcome.replicas_added);
}

TEST(AdaptiveTest, RejectsInvalidOptions) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  placement::AdaptiveOptions bad;
  bad.transfer_cost_per_byte = -1.0;
  EXPECT_THROW(placement::adaptive_hybrid_replan(*t.system, previous, bad),
               cdn::PreconditionError);
}

TEST(AdaptiveTest, FailoverReplanLeavesDeadServersEmpty) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  std::vector<std::uint8_t> up(t.system->server_count(), 1);
  up[0] = 0;
  const auto outcome =
      placement::failover_replan(*t.system, previous, up, {});
  EXPECT_EQ(outcome.result.algorithm, "failover-replan");
  for (std::size_t j = 0; j < t.system->site_count(); ++j) {
    EXPECT_FALSE(outcome.result.placement.is_replicated(
        0, static_cast<sys::SiteIndex>(j)));
  }
  // Whatever server 0 held was stripped (counted as dropped).
  const std::size_t was_on_dead = [&] {
    std::size_t c = 0;
    for (std::size_t j = 0; j < t.system->site_count(); ++j) {
      c += previous.placement.is_replicated(
          0, static_cast<sys::SiteIndex>(j));
    }
    return c;
  }();
  EXPECT_GE(outcome.replicas_dropped, was_on_dead);
}

TEST(AdaptiveTest, FailoverReplanRehomesLostReplicas) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  std::vector<std::uint8_t> up(t.system->server_count(), 1);
  up[0] = 0;
  const auto outcome =
      placement::failover_replan(*t.system, previous, up, {});
  // The survivors still replicate: total replicas stay positive, and
  // every one of them sits on a live server.
  EXPECT_GT(outcome.result.placement.replica_count(), 0u);
  const auto rehomed = sim::simulate(
      *t.system, outcome.result, [] {
        sim::SimulationConfig sc;
        sc.total_requests = 100'000;
        sc.seed = 17;
        return sc;
      }());
  EXPECT_GT(rehomed.measured_requests, 0u);
}

TEST(AdaptiveTest, FailoverReplanWithHealthyMaskIsPlainReplan) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  const std::vector<std::uint8_t> up(t.system->server_count(), 1);
  const auto failover =
      placement::failover_replan(*t.system, previous, up, {});
  const auto plain =
      placement::adaptive_hybrid_replan(*t.system, previous, {});
  EXPECT_EQ(failover.result.algorithm, "failover-replan");
  EXPECT_EQ(failover.result.placement.replica_count(),
            plain.result.placement.replica_count());
  EXPECT_EQ(failover.replicas_dropped, plain.replicas_dropped);
}

TEST(AdaptiveTest, FailoverReplanSurvivesTotalRegionOutage) {
  // Kill EVERY server inside one stub domain — the paper's topology makes
  // a region-wide outage a natural fault unit — and check that (a) the
  // replan leaves the dead region empty, and (b) the spilled-flow
  // accounting of the redirect layer stays non-negative and conserved.
  core::ScenarioConfig cfg;
  cfg.topology.transit_domains = 2;
  cfg.topology.transit_nodes_per_domain = 2;
  cfg.topology.stub_domains_per_transit_node = 2;
  cfg.topology.nodes_per_stub_domain = 4;  // 36 nodes total
  cfg.server_count = 12;
  cfg.classes = {{8, 1.0, "low"}, {4, 8.0, "high"}};
  cfg.surge.objects_per_site = 40;
  cfg.storage_fraction = 0.15;
  cfg.seed = 7;
  const core::Scenario scenario(cfg);
  const auto& system = scenario.system();
  const auto previous = placement::hybrid_greedy(system);

  // Pick the stub domain hosting the most servers and take it offline.
  const auto& domains = scenario.topology().stub_domains;
  const auto& nodes = scenario.server_nodes();
  std::vector<std::uint8_t> up(system.server_count(), 1);
  std::size_t best_domain = 0, best_count = 0;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    std::size_t count = 0;
    for (const auto node : nodes) {
      count += std::count(domains[d].nodes.begin(), domains[d].nodes.end(),
                          node) != 0;
    }
    if (count > best_count) {
      best_count = count;
      best_domain = d;
    }
  }
  ASSERT_GT(best_count, 0u);           // some domain hosts servers...
  ASSERT_LT(best_count, up.size());    // ...but not all of them
  std::vector<sys::ServerIndex> dead;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (std::count(domains[best_domain].nodes.begin(),
                   domains[best_domain].nodes.end(), nodes[i]) != 0) {
      up[i] = 0;
      dead.push_back(static_cast<sys::ServerIndex>(i));
    }
  }

  const auto outcome = placement::failover_replan(system, previous, up, {});
  for (const sys::ServerIndex i : dead) {
    for (std::size_t j = 0; j < system.site_count(); ++j) {
      EXPECT_FALSE(outcome.result.placement.is_replicated(
          i, static_cast<sys::SiteIndex>(j)));
    }
  }

  redirect::SelectionParams params;
  params.server_up = &up;
  const auto selection =
      redirect::assign_miss_traffic(system, outcome.result, params);

  // Non-negativity, and dead servers receive no redirected flow.
  EXPECT_GE(selection.failed_over_flow, 0.0);
  EXPECT_GE(selection.unserved_flow, 0.0);
  EXPECT_GT(selection.failed_over_flow, 0.0);  // the region had demand
  for (const sys::ServerIndex i : dead) {
    EXPECT_DOUBLE_EQ(selection.server_flow[i], 0.0) << "dead server " << i;
  }
  for (const double f : selection.server_flow) EXPECT_GE(f, 0.0);
  for (const double f : selection.primary_flow) EXPECT_GE(f, 0.0);

  // Conservation: everything that entered the redirect layer either landed
  // on a live holder / primary or was declared unserved — nothing vanishes.
  double expected_total = 0.0;
  for (std::size_t i = 0; i < system.server_count(); ++i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    for (std::size_t j = 0; j < system.site_count(); ++j) {
      const auto site = static_cast<sys::SiteIndex>(j);
      if (up[i] == 0) {
        expected_total += system.demand().requests(server, site);
      } else if (!outcome.result.placement.is_replicated(server, site)) {
        expected_total += system.demand().requests(server, site) *
                          (1.0 - outcome.result.hit(server, site));
      }
    }
  }
  const double assigned =
      std::accumulate(selection.server_flow.begin(),
                      selection.server_flow.end(), 0.0) +
      std::accumulate(selection.primary_flow.begin(),
                      selection.primary_flow.end(), 0.0) +
      selection.unserved_flow;
  EXPECT_NEAR(assigned, expected_total, 1e-6 * std::max(1.0, expected_total));
}

TEST(AdaptiveTest, FailoverReplanRejectsBadMask) {
  const auto t = TestSystem::make();
  const auto previous = placement::hybrid_greedy(*t.system);
  const std::vector<std::uint8_t> short_mask(t.system->server_count() - 1,
                                             1);
  EXPECT_THROW(
      placement::failover_replan(*t.system, previous, short_mask, {}),
      cdn::PreconditionError);
}

}  // namespace
