// Validation of the analytical LRU model (Eqs. 1-2) against a direct LRU
// simulation — the single-cache analogue of the paper's Figure 6, which
// reports model error below 7%.

#include <gtest/gtest.h>

#include <vector>

#include "src/cache/lru_cache.h"
#include "src/model/characteristic_time.h"
#include "src/model/hit_ratio_curve.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/zipf.h"

namespace {

using cdn::cache::LruCache;
using cdn::model::characteristic_time_closed_form;
using cdn::model::lru_hit_ratio_exact;
using cdn::model::top_b_cumulative_probability;
using cdn::util::AliasSampler;
using cdn::util::Rng;
using cdn::util::ZipfDistribution;

struct SimResult {
  std::vector<double> measured_hit;   // per site
  std::vector<double> predicted_hit;  // per site
  double overall_measured = 0.0;
  double overall_predicted = 0.0;
};

/// Simulates one LRU cache of `slots` unit-size objects fed by i.i.d.
/// requests over `site_weights` sites x Zipf(L, theta) objects, and returns
/// measured vs Eq.1-predicted per-site hit ratios.
SimResult run(std::size_t slots, const std::vector<double>& site_weights,
              std::size_t objects_per_site, double theta,
              std::uint64_t requests, std::uint64_t seed) {
  const ZipfDistribution zipf(objects_per_site, theta);
  const AliasSampler site_sampler(site_weights);
  Rng rng(seed);
  LruCache cache(slots);  // unit-size objects: bytes == slots

  const std::uint64_t warmup = requests / 4;
  std::vector<std::uint64_t> hits(site_weights.size(), 0);
  std::vector<std::uint64_t> totals(site_weights.size(), 0);
  for (std::uint64_t t = 0; t < requests; ++t) {
    const std::size_t site = site_sampler.sample(rng);
    const std::size_t rank = zipf.sample(rng);
    const std::uint64_t key = site * objects_per_site + rank;
    const bool hit = cache.access(key, 1);
    if (t >= warmup) {
      ++totals[site];
      hits[site] += hit;
    }
  }

  // Model prediction.
  std::vector<double> normalized(site_weights);
  double mass = 0.0;
  for (double w : normalized) mass += w;
  for (double& w : normalized) w /= mass;
  const double pb = top_b_cumulative_probability(normalized, zipf, slots);
  const double k = characteristic_time_closed_form(
      slots, pb >= 1.0 ? 1.0 - 1e-12 : pb);

  SimResult result;
  double weighted_pred = 0.0, weighted_meas = 0.0;
  for (std::size_t j = 0; j < site_weights.size(); ++j) {
    result.measured_hit.push_back(
        totals[j] ? static_cast<double>(hits[j]) /
                        static_cast<double>(totals[j])
                  : 0.0);
    result.predicted_hit.push_back(
        lru_hit_ratio_exact(zipf, normalized[j], k));
    weighted_pred += normalized[j] * result.predicted_hit.back();
    weighted_meas += normalized[j] * result.measured_hit.back();
  }
  result.overall_predicted = weighted_pred;
  result.overall_measured = weighted_meas;
  return result;
}

TEST(ModelVsSimulationTest, SingleSiteMediumCache) {
  const auto r = run(200, {1.0}, 1000, 1.0, 2'000'000, 1);
  EXPECT_NEAR(r.overall_predicted / r.overall_measured, 1.0, 0.07);
}

TEST(ModelVsSimulationTest, SingleSiteSmallCache) {
  const auto r = run(20, {1.0}, 1000, 1.0, 2'000'000, 2);
  EXPECT_NEAR(r.overall_predicted / r.overall_measured, 1.0, 0.10);
}

TEST(ModelVsSimulationTest, SingleSiteLargeCacheNearlyEverythingFits) {
  const auto r = run(900, {1.0}, 1000, 1.0, 2'000'000, 3);
  // Hit ratio is close to 1 here; this is where the characteristic-time
  // approximation is weakest (the paper reports the error growing with
  // buffer size but staying below 7%).
  EXPECT_GT(r.overall_measured, 0.9);
  EXPECT_NEAR(r.overall_predicted, r.overall_measured, 0.07);
}

TEST(ModelVsSimulationTest, MultiSiteMixedPopularity) {
  // 8 sites with skewed weights — the CDN-server situation of Section 3.2.
  const std::vector<double> weights{16, 8, 8, 4, 4, 2, 1, 1};
  const auto r = run(400, weights, 500, 1.0, 4'000'000, 4);
  EXPECT_NEAR(r.overall_predicted / r.overall_measured, 1.0, 0.07);
  // Per-site: popular sites predicted within 10%.
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(r.predicted_hit[j] / r.measured_hit[j], 1.0, 0.10)
        << "site " << j;
  }
}

TEST(ModelVsSimulationTest, PaperErrorBoundAcrossConfigurations) {
  // Aggregate check in the spirit of Figure 6: across several (cache size,
  // workload) points, the mean relative error of the predicted overall hit
  // ratio stays below 7%.
  const std::vector<double> weights{10, 5, 3, 2, 1, 1};
  std::vector<double> predicted, measured;
  for (std::size_t slots : {100, 300, 800}) {
    const auto r = run(slots, weights, 400, 1.0, 3'000'000,
                       1000 + slots);
    predicted.push_back(r.overall_predicted);
    measured.push_back(r.overall_measured);
  }
  EXPECT_LT(cdn::util::mean_relative_error(measured, predicted), 0.07);
}

TEST(ModelVsSimulationTest, LowerThetaLowersHitRatioAndModelTracks) {
  const std::vector<double> weights{4, 2, 1, 1};
  const auto hot = run(200, weights, 500, 1.2, 2'000'000, 7);
  const auto cold = run(200, weights, 500, 0.6, 2'000'000, 8);
  EXPECT_GT(hot.overall_measured, cold.overall_measured);
  EXPECT_NEAR(hot.overall_predicted / hot.overall_measured, 1.0, 0.08);
  EXPECT_NEAR(cold.overall_predicted / cold.overall_measured, 1.0, 0.08);
}

TEST(ModelVsSimulationTest, ModelOverestimatesAtMostMildly) {
  // The paper notes the model "tends to slightly overestimate ... for large
  // buffer sizes" but stays within 7%.  Check the signed error at a large
  // buffer is small.
  const auto r = run(600, {3, 2, 1}, 500, 1.0, 3'000'000, 9);
  EXPECT_LT(r.overall_predicted - r.overall_measured, 0.05);
  EXPECT_GT(r.overall_predicted - r.overall_measured, -0.05);
}

}  // namespace
