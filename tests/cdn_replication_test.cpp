// Unit tests for the replication matrix with storage accounting, and the
// distance oracle.

#include <gtest/gtest.h>

#include <vector>

#include "src/cdn/distance_oracle.h"
#include "src/cdn/replication.h"
#include "src/topology/shortest_paths.h"
#include "src/util/error.h"

namespace {

using cdn::sys::DistanceOracle;
using cdn::sys::ReplicaPlacement;

ReplicaPlacement small_placement() {
  const std::vector<std::uint64_t> storage{100, 50};
  const std::vector<std::uint64_t> sites{40, 30, 60};
  return ReplicaPlacement(storage, sites);
}

TEST(ReplicaPlacementTest, StartsEmpty) {
  const auto p = small_placement();
  EXPECT_EQ(p.server_count(), 2u);
  EXPECT_EQ(p.site_count(), 3u);
  EXPECT_EQ(p.replica_count(), 0u);
  EXPECT_EQ(p.used_bytes(0), 0u);
  EXPECT_EQ(p.free_bytes(0), 100u);
  EXPECT_FALSE(p.is_replicated(0, 0));
}

TEST(ReplicaPlacementTest, AddTracksBytes) {
  auto p = small_placement();
  p.add(0, 0);
  EXPECT_TRUE(p.is_replicated(0, 0));
  EXPECT_EQ(p.used_bytes(0), 40u);
  EXPECT_EQ(p.free_bytes(0), 60u);
  EXPECT_EQ(p.replica_count(), 1u);
  EXPECT_EQ(p.replicas_of_site(0), 1u);
}

TEST(ReplicaPlacementTest, CapacityConstraintEnforced) {
  auto p = small_placement();
  p.add(1, 0);                     // 40 of 50
  EXPECT_FALSE(p.can_add(1, 1));   // 30 > 10 left
  EXPECT_THROW(p.add(1, 1), cdn::PreconditionError);
  EXPECT_FALSE(p.can_add(1, 0));   // duplicate
  EXPECT_THROW(p.add(1, 0), cdn::PreconditionError);
}

TEST(ReplicaPlacementTest, ExactFitAllowed) {
  auto p = small_placement();
  p.add(0, 0);  // 40
  p.add(0, 2);  // 60 -> exactly 100
  EXPECT_EQ(p.free_bytes(0), 0u);
  EXPECT_FALSE(p.can_add(0, 1));
}

TEST(ReplicaPlacementTest, RemoveRestoresSpace) {
  auto p = small_placement();
  p.add(0, 0);
  p.remove(0, 0);
  EXPECT_FALSE(p.is_replicated(0, 0));
  EXPECT_EQ(p.used_bytes(0), 0u);
  EXPECT_EQ(p.replica_count(), 0u);
  EXPECT_THROW(p.remove(0, 0), cdn::PreconditionError);
}

TEST(ReplicaPlacementTest, ReplicatorsListsHolders) {
  auto p = small_placement();
  p.add(0, 1);
  p.add(1, 1);
  const auto holders = p.replicators(1);
  ASSERT_EQ(holders.size(), 2u);
  EXPECT_EQ(holders[0], 0u);
  EXPECT_EQ(holders[1], 1u);
  EXPECT_TRUE(p.replicators(0).empty());
}

TEST(ReplicaPlacementTest, RejectsInvalidConstruction) {
  const std::vector<std::uint64_t> storage{100};
  const std::vector<std::uint64_t> empty;
  const std::vector<std::uint64_t> zero_site{0};
  EXPECT_THROW(ReplicaPlacement(empty, storage), cdn::PreconditionError);
  EXPECT_THROW(ReplicaPlacement(storage, empty), cdn::PreconditionError);
  EXPECT_THROW(ReplicaPlacement(storage, zero_site), cdn::PreconditionError);
}

TEST(DistanceOracleTest, TableAccessors) {
  // 2 servers, 2 sites.
  const std::vector<double> ss{0, 3, 3, 0};
  const std::vector<double> sp{1, 4, 2, 5};
  const DistanceOracle d(2, 2, ss, sp);
  EXPECT_DOUBLE_EQ(d.server_to_server(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d.server_to_server(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(d.server_to_primary(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(d.server_to_primary(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(d.max_cost(), 5.0);
}

TEST(DistanceOracleTest, RejectsBadTables) {
  const std::vector<double> bad_diag{1, 3, 3, 0};
  const std::vector<double> sp{1, 4, 2, 5};
  EXPECT_THROW(DistanceOracle(2, 2, bad_diag, sp), cdn::PreconditionError);
  const std::vector<double> ss{0, 3, 3, 0};
  const std::vector<double> short_sp{1};
  EXPECT_THROW(DistanceOracle(2, 2, ss, short_sp), cdn::PreconditionError);
  const std::vector<double> neg{0, -1, -1, 0};
  EXPECT_THROW(DistanceOracle(2, 2, neg, sp), cdn::PreconditionError);
}

TEST(DistanceOracleTest, FromTopologyMatchesBfs) {
  // Path graph 0-1-2-3; servers at nodes 0 and 2, primaries at 1 and 3.
  cdn::topology::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const std::vector<cdn::topology::NodeId> servers{0, 2};
  const cdn::topology::HopMatrix hops(g, servers);
  const std::vector<cdn::topology::NodeId> primaries{1, 3};
  const auto d = DistanceOracle::from_topology(hops, primaries);
  EXPECT_DOUBLE_EQ(d.server_to_server(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(d.server_to_server(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d.server_to_primary(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.server_to_primary(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d.server_to_primary(1, 1), 1.0);
}

TEST(DistanceOracleTest, FromTopologyRejectsDisconnected) {
  cdn::topology::Graph g(3);
  g.add_edge(0, 1);  // node 2 unreachable
  const std::vector<cdn::topology::NodeId> servers{0, 1};
  const cdn::topology::HopMatrix hops(g, servers);
  const std::vector<cdn::topology::NodeId> primaries{2};
  EXPECT_THROW(DistanceOracle::from_topology(hops, primaries),
               cdn::PreconditionError);
}

}  // namespace
