// Unit tests for Eq. 2: the characteristic time K and the top-B cumulative
// probability p_B.

#include <gtest/gtest.h>

#include <vector>

#include "src/model/characteristic_time.h"
#include "src/util/error.h"

namespace {

using cdn::model::characteristic_time_closed_form;
using cdn::model::characteristic_time_exact;
using cdn::model::top_b_cumulative_probability;
using cdn::util::ZipfDistribution;

TEST(CharacteristicTimeTest, EmptyBufferIsZero) {
  EXPECT_DOUBLE_EQ(characteristic_time_exact(0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(characteristic_time_closed_form(0, 0.5), 0.0);
}

TEST(CharacteristicTimeTest, SingleSlotIsOne) {
  EXPECT_DOUBLE_EQ(characteristic_time_exact(1, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(characteristic_time_closed_form(1, 0.5), 1.0);
}

TEST(CharacteristicTimeTest, ZeroPbGivesB) {
  // With p_B = 0 every slot takes exactly one time step: K = B.
  EXPECT_DOUBLE_EQ(characteristic_time_exact(100, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(characteristic_time_closed_form(100, 0.0), 100.0);
}

TEST(CharacteristicTimeTest, HandComputedSmallSum) {
  // B = 3, p_B = 0.5: c = 0.25; K = 1/(1-0) + 1/(1-0.25) + 1/(1-0.5)
  //                             = 1 + 4/3 + 2 = 13/3.
  EXPECT_NEAR(characteristic_time_exact(3, 0.5), 13.0 / 3.0, 1e-12);
}

TEST(CharacteristicTimeTest, KGrowsWithPb) {
  // Higher p_B means the object in front is passed over more often: K grows.
  double prev = 0.0;
  for (double pb : {0.0, 0.2, 0.5, 0.8, 0.95}) {
    const double k = characteristic_time_exact(1000, pb);
    EXPECT_GT(k, prev);
    prev = k;
  }
}

TEST(CharacteristicTimeTest, KAtLeastB) {
  // Every position takes >= 1 slot, so K >= B always.
  for (std::uint64_t b : {2ull, 10ull, 1000ull}) {
    for (double pb : {0.1, 0.6, 0.9}) {
      EXPECT_GE(characteristic_time_exact(b, pb), static_cast<double>(b));
      EXPECT_GE(characteristic_time_closed_form(b, pb),
                static_cast<double>(b) * 0.999);
    }
  }
}

TEST(CharacteristicTimeTest, RejectsPbOutOfRange) {
  EXPECT_THROW(characteristic_time_exact(10, 1.0), cdn::PreconditionError);
  EXPECT_THROW(characteristic_time_exact(10, -0.1), cdn::PreconditionError);
  EXPECT_THROW(characteristic_time_closed_form(10, 1.0),
               cdn::PreconditionError);
}

// The closed form must match the exact sum to a small relative error across
// the (B, p_B) range the greedy algorithm visits.
class ClosedFormAccuracyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ClosedFormAccuracyTest, MatchesExactSum) {
  const auto [slots, pb] = GetParam();
  const double exact = characteristic_time_exact(slots, pb);
  const double closed = characteristic_time_closed_form(slots, pb);
  EXPECT_NEAR(closed / exact, 1.0, 1e-3)
      << "B=" << slots << " p_B=" << pb;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosedFormAccuracyTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(10, 100, 1000, 10000,
                                                        100000),
                       ::testing::Values(0.001, 0.1, 0.3, 0.5, 0.7, 0.9,
                                         0.99)));

TEST(TopBProbabilityTest, ZeroSlotsIsZero) {
  ZipfDistribution zipf(10, 1.0);
  const std::vector<double> weights{1.0};
  EXPECT_DOUBLE_EQ(top_b_cumulative_probability(weights, zipf, 0), 0.0);
}

TEST(TopBProbabilityTest, AllObjectsFitIsOne) {
  ZipfDistribution zipf(10, 1.0);
  const std::vector<double> weights{0.6, 0.4};
  EXPECT_DOUBLE_EQ(top_b_cumulative_probability(weights, zipf, 20), 1.0);
  EXPECT_DOUBLE_EQ(top_b_cumulative_probability(weights, zipf, 1000), 1.0);
}

TEST(TopBProbabilityTest, SingleSiteMatchesZipfCdf) {
  ZipfDistribution zipf(100, 1.0);
  const std::vector<double> weights{1.0};
  for (std::uint64_t b : {1ull, 5ull, 50ull}) {
    EXPECT_NEAR(top_b_cumulative_probability(weights, zipf, b),
                zipf.cdf(b), 1e-12);
  }
}

TEST(TopBProbabilityTest, TwoSitesMergeInterleaves) {
  // Sites with weights 0.7 / 0.3 over a 2-object Zipf(theta=1):
  // q = {2/3, 1/3}.  Object probabilities: {0.4667, 0.2333} and {0.2, 0.1}.
  // Top-2 = 0.4667 + 0.2333 = 0.7 (both from the heavy site).
  ZipfDistribution zipf(2, 1.0);
  const std::vector<double> weights{0.7, 0.3};
  EXPECT_NEAR(top_b_cumulative_probability(weights, zipf, 2), 0.7, 1e-9);
  // Top-3 adds the light site's head: 0.7 + 0.2 = 0.9.
  EXPECT_NEAR(top_b_cumulative_probability(weights, zipf, 3), 0.9, 1e-9);
}

TEST(TopBProbabilityTest, ZeroWeightSitesContributeNothing) {
  ZipfDistribution zipf(5, 1.0);
  const std::vector<double> with_zero{0.0, 1.0, 0.0};
  const std::vector<double> alone{1.0};
  for (std::uint64_t b = 1; b <= 5; ++b) {
    EXPECT_NEAR(top_b_cumulative_probability(with_zero, zipf, b),
                top_b_cumulative_probability(alone, zipf, b), 1e-12);
  }
  // All-zero weights: nothing cacheable.
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(top_b_cumulative_probability(zeros, zipf, 3), 0.0);
}

TEST(TopBProbabilityTest, MonotoneInSlots) {
  ZipfDistribution zipf(50, 0.8);
  const std::vector<double> weights{0.5, 0.3, 0.2};
  double prev = 0.0;
  for (std::uint64_t b = 1; b <= 150; b += 7) {
    const double p = top_b_cumulative_probability(weights, zipf, b);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(TopBProbabilityTest, StaysBelowOneWhenTruncated) {
  ZipfDistribution zipf(1000, 1.0);
  const std::vector<double> weights{0.25, 0.25, 0.25, 0.25};
  const double p = top_b_cumulative_probability(weights, zipf, 100);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(TopBProbabilityTest, RejectsNegativeWeights) {
  ZipfDistribution zipf(5, 1.0);
  const std::vector<double> weights{0.5, -0.5};
  EXPECT_THROW(top_b_cumulative_probability(weights, zipf, 2),
               cdn::PreconditionError);
}

}  // namespace
