// Unit tests for the synthetic request stream.

#include <gtest/gtest.h>

#include <map>

#include "src/util/error.h"
#include "src/workload/request_stream.h"

namespace {

using cdn::util::Rng;
using cdn::workload::DemandMatrix;
using cdn::workload::PopularityClass;
using cdn::workload::Request;
using cdn::workload::RequestStream;
using cdn::workload::SiteCatalog;
using cdn::workload::SurgeParams;

struct Fixture {
  SiteCatalog catalog;
  DemandMatrix demand;

  static Fixture make() {
    SurgeParams params;
    params.objects_per_site = 30;
    const std::vector<PopularityClass> classes{{3, 1.0, "x"}};
    Rng rng(1);
    auto catalog = SiteCatalog::generate(params, classes, rng);
    // Skewed hand-built demand: server 0 dominates, site 2 dominates.
    const std::vector<double> values{10.0, 20.0, 70.0,   // server 0
                                     2.0,  3.0,  5.0};   // server 1
    auto demand = DemandMatrix::from_values(2, 3, values);
    return {std::move(catalog), std::move(demand)};
  }
};

TEST(RequestStreamTest, DeterministicForSameSeed) {
  const auto f = Fixture::make();
  RequestStream a(f.catalog, f.demand, 99);
  RequestStream b(f.catalog, f.demand, 99);
  for (int i = 0; i < 1000; ++i) {
    const Request ra = a.next();
    const Request rb = b.next();
    EXPECT_EQ(ra.server, rb.server);
    EXPECT_EQ(ra.site, rb.site);
    EXPECT_EQ(ra.rank, rb.rank);
  }
}

TEST(RequestStreamTest, CellFrequenciesMatchDemand) {
  const auto f = Fixture::make();
  RequestStream stream(f.catalog, f.demand, 7);
  std::map<std::pair<int, int>, int> counts;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const Request r = stream.next();
    ++counts[{r.server, r.site}];
  }
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      const double expected =
          f.demand.requests(static_cast<cdn::workload::ServerId>(i),
                            static_cast<cdn::workload::SiteId>(j)) /
          f.demand.total();
      EXPECT_NEAR(static_cast<double>(counts[{i, j}]) / n, expected, 0.01)
          << "cell " << i << "," << j;
    }
  }
}

TEST(RequestStreamTest, RanksFollowZipf) {
  const auto f = Fixture::make();
  RequestStream stream(f.catalog, f.demand, 8);
  std::vector<int> rank_counts(31, 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++rank_counts[stream.next().rank];
  const auto& zipf = f.catalog.object_popularity();
  EXPECT_NEAR(static_cast<double>(rank_counts[1]) / n, zipf.pmf(1), 0.01);
  EXPECT_NEAR(static_cast<double>(rank_counts[2]) / n, zipf.pmf(2), 0.01);
  // Ranks in range.
  for (int i = 0; i < 100; ++i) {
    const Request r = stream.next();
    EXPECT_GE(r.rank, 1u);
    EXPECT_LE(r.rank, 30u);
  }
}

TEST(RequestStreamTest, LocalityIncreasesRepeats) {
  const auto f = Fixture::make();
  auto repeat_fraction = [&](double locality) {
    RequestStream stream(f.catalog, f.demand, 9, locality, 64);
    std::set<std::tuple<int, int, int>> recent;
    int repeats = 0;
    const int n = 50000;
    std::vector<Request> window;
    for (int i = 0; i < n; ++i) {
      const Request r = stream.next();
      for (const Request& w : window) {
        if (w.server == r.server && w.site == r.site && w.rank == r.rank) {
          ++repeats;
          break;
        }
      }
      window.push_back(r);
      if (window.size() > 64) window.erase(window.begin());
    }
    return static_cast<double>(repeats) / n;
  };
  EXPECT_GT(repeat_fraction(0.5), repeat_fraction(0.0) + 0.1);
}

TEST(RequestStreamTest, BatchDrawsExactlyTheScalarSequence) {
  // next_batch() is the data-oriented hot-loop entry; it must consume the
  // RNG exactly as repeated next() calls do, or the batched simulator
  // diverges from the reference loop.
  const auto f = Fixture::make();
  for (const double locality : {0.0, 0.4}) {
    RequestStream scalar(f.catalog, f.demand, 55, locality, 32);
    RequestStream batched(f.catalog, f.demand, 55, locality, 32);
    cdn::workload::RequestBatch batch;
    // Uneven batch sizes cross internal boundaries on purpose.
    for (const std::size_t count :
         std::vector<std::size_t>{1, 7, 256, 1000, 3}) {
      batched.next_batch(batch, count);
      ASSERT_EQ(batch.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        const Request r = scalar.next();
        ASSERT_EQ(batch.server[i], r.server) << "locality " << locality;
        ASSERT_EQ(batch.site[i], r.site);
        ASSERT_EQ(batch.rank[i], r.rank);
      }
    }
  }
}

TEST(RequestStreamTest, RejectsInvalidConfig) {
  const auto f = Fixture::make();
  EXPECT_THROW(RequestStream(f.catalog, f.demand, 1, 1.0),
               cdn::PreconditionError);
  EXPECT_THROW(RequestStream(f.catalog, f.demand, 1, -0.1),
               cdn::PreconditionError);
  EXPECT_THROW(RequestStream(f.catalog, f.demand, 1, 0.5, 0),
               cdn::PreconditionError);
}

TEST(RequestStreamTest, SubsetStreamSamplesConditionalDistribution) {
  // A stream restricted to server 0 must reproduce server 0's demand row,
  // renormalised — the decomposition the sharded simulator relies on.
  const auto f = Fixture::make();
  const std::vector<cdn::workload::ServerId> subset{0};
  RequestStream stream(f.catalog, f.demand, 21, 0.0, 256, subset);
  std::vector<int> site_counts(3, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Request r = stream.next();
    ASSERT_EQ(r.server, 0u);
    ++site_counts[r.site];
  }
  double row_total = 0.0;
  for (const double d : f.demand.row(0)) row_total += d;
  for (int j = 0; j < 3; ++j) {
    const double expected = f.demand.requests(0, j) / row_total;
    EXPECT_NEAR(static_cast<double>(site_counts[j]) / n, expected, 0.01)
        << "site " << j;
  }
}

TEST(RequestStreamTest, ExplicitFullSubsetMatchesDefaultStream) {
  const auto f = Fixture::make();
  const std::vector<cdn::workload::ServerId> all{0, 1};
  RequestStream a(f.catalog, f.demand, 33, 0.4, 32);
  RequestStream b(f.catalog, f.demand, 33, 0.4, 32, all);
  for (int i = 0; i < 2000; ++i) {
    const Request ra = a.next();
    const Request rb = b.next();
    EXPECT_EQ(ra.server, rb.server);
    EXPECT_EQ(ra.site, rb.site);
    EXPECT_EQ(ra.rank, rb.rank);
  }
}

TEST(RequestStreamTest, SubsetStreamsWithLocalityStayOnOwnedServers) {
  const auto f = Fixture::make();
  const std::vector<cdn::workload::ServerId> subset{1};
  RequestStream stream(f.catalog, f.demand, 5, 0.6, 16, subset);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(stream.next().server, 1u);
  }
}

TEST(RequestStreamTest, RejectsOutOfRangeSubset) {
  const auto f = Fixture::make();
  const std::vector<cdn::workload::ServerId> bad{0, 7};
  EXPECT_THROW(RequestStream(f.catalog, f.demand, 1, 0.0, 256, bad),
               cdn::PreconditionError);
}

TEST(RequestStreamTest, RejectsMismatchedCatalogAndDemand) {
  const auto f = Fixture::make();
  const auto other_demand =
      DemandMatrix::from_values(1, 2, std::vector<double>{1.0, 1.0});
  EXPECT_THROW(RequestStream(f.catalog, other_demand, 1),
               cdn::PreconditionError);
}

}  // namespace
