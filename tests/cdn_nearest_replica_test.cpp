// Unit tests for the SN_j^(i) nearest-replica index.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/cdn/nearest_replica.h"
#include "src/util/error.h"

namespace {

using cdn::sys::DistanceOracle;
using cdn::sys::NearestReplicaIndex;
using cdn::sys::ReplicaPlacement;

// 3 servers in a line (0 -1- 1 -1- 2, so C(0,2) = 2); one site whose
// primary is 5 hops from server 0, 4 from server 1, 3 from server 2.
struct Fixture {
  DistanceOracle distances{3,
                           1,
                           {0, 1, 2,
                            1, 0, 1,
                            2, 1, 0},
                           {5, 4, 3}};
  ReplicaPlacement placement{std::vector<std::uint64_t>{100, 100, 100},
                             std::vector<std::uint64_t>{10}};
};

TEST(NearestReplicaTest, InitialSnIsPrimary) {
  Fixture f;
  const NearestReplicaIndex sn(f.distances, f.placement);
  for (cdn::sys::ServerIndex i = 0; i < 3; ++i) {
    EXPECT_TRUE(sn.nearest(i, 0).at_primary);
  }
  EXPECT_DOUBLE_EQ(sn.cost(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sn.cost(2, 0), 3.0);
}

TEST(NearestReplicaTest, ReplicaBeatsPrimaryWhenCloser) {
  Fixture f;
  f.placement.add(1, 0);
  const NearestReplicaIndex sn(f.distances, f.placement);
  // Server 0: replica at server 1 costs 1 < primary 5.
  EXPECT_FALSE(sn.nearest(0, 0).at_primary);
  EXPECT_EQ(sn.nearest(0, 0).server, 1u);
  EXPECT_DOUBLE_EQ(sn.cost(0, 0), 1.0);
  // Holder itself: zero.
  EXPECT_DOUBLE_EQ(sn.cost(1, 0), 0.0);
  // Server 2: replica costs 1 < primary 3.
  EXPECT_DOUBLE_EQ(sn.cost(2, 0), 1.0);
}

TEST(NearestReplicaTest, PrimaryRetainedWhenCloserThanReplica) {
  Fixture f;
  f.placement.add(0, 0);
  const NearestReplicaIndex sn(f.distances, f.placement);
  // Server 2: replica at 0 costs 2, primary costs 3 -> replica wins; but
  // for a primary at distance 1 it would win.  Rebuild with closer primary.
  EXPECT_DOUBLE_EQ(sn.cost(2, 0), 2.0);

  const DistanceOracle close_primary(3, 1,
                                     {0, 1, 2, 1, 0, 1, 2, 1, 0},
                                     {5, 4, 1});
  const NearestReplicaIndex sn2(close_primary, f.placement);
  EXPECT_TRUE(sn2.nearest(2, 0).at_primary);
  EXPECT_DOUBLE_EQ(sn2.cost(2, 0), 1.0);
}

TEST(NearestReplicaTest, OnReplicaAddedMatchesRebuild) {
  Fixture f;
  NearestReplicaIndex incremental(f.distances, f.placement);
  f.placement.add(2, 0);
  incremental.on_replica_added(2, 0);
  const NearestReplicaIndex rebuilt(f.distances, f.placement);
  for (cdn::sys::ServerIndex i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(incremental.cost(i, 0), rebuilt.cost(i, 0)) << i;
    EXPECT_EQ(incremental.nearest(i, 0).at_primary,
              rebuilt.nearest(i, 0).at_primary)
        << i;
  }
}

TEST(NearestReplicaTest, HolderAlwaysCostsZero) {
  Fixture f;
  NearestReplicaIndex sn(f.distances, f.placement);
  f.placement.add(0, 0);
  sn.on_replica_added(0, 0);
  EXPECT_DOUBLE_EQ(sn.cost(0, 0), 0.0);
  EXPECT_FALSE(sn.nearest(0, 0).at_primary);
  EXPECT_EQ(sn.nearest(0, 0).server, 0u);
}

TEST(NearestReplicaTest, SecondFartherReplicaChangesNothing) {
  Fixture f;
  NearestReplicaIndex sn(f.distances, f.placement);
  f.placement.add(1, 0);
  sn.on_replica_added(1, 0);
  const double before = sn.cost(0, 0);
  f.placement.add(2, 0);  // farther from server 0 than server 1 is
  sn.on_replica_added(2, 0);
  EXPECT_DOUBLE_EQ(sn.cost(0, 0), before);
  EXPECT_EQ(sn.nearest(0, 0).server, 1u);
}

TEST(NearestReplicaTest, OnReplicaAddedReturnsChangedServers) {
  Fixture f;
  NearestReplicaIndex sn(f.distances, f.placement);
  // First replica at server 1: beats the primary everywhere (costs 1, 0, 1
  // vs 5, 4, 3) — every server's cell changes.
  f.placement.add(1, 0);
  EXPECT_EQ(sn.on_replica_added(1, 0),
            (std::vector<cdn::sys::ServerIndex>{0, 1, 2}));
  // Second replica at server 2: server 2's cell drops 1 -> 0; server 1 is
  // closer to itself, server 0 is closer to server 1.  The holder is always
  // in the list.
  f.placement.add(2, 0);
  EXPECT_EQ(sn.on_replica_added(2, 0),
            (std::vector<cdn::sys::ServerIndex>{2}));
}

TEST(NearestReplicaTest, ChangedListMatchesCellDeltas) {
  // Property: the returned list is exactly the set of servers whose cost or
  // holder changed, compared against a before-snapshot, ascending.
  Fixture f;
  NearestReplicaIndex sn(f.distances, f.placement);
  for (const cdn::sys::ServerIndex holder : {2u, 0u, 1u}) {
    std::vector<double> before;
    for (cdn::sys::ServerIndex i = 0; i < 3; ++i) {
      before.push_back(sn.cost(i, 0));
    }
    f.placement.add(holder, 0);
    const auto changed = sn.on_replica_added(holder, 0);
    std::vector<cdn::sys::ServerIndex> expected;
    for (cdn::sys::ServerIndex i = 0; i < 3; ++i) {
      const bool now_holder =
          !sn.nearest(i, 0).at_primary && sn.nearest(i, 0).server == holder;
      if (sn.cost(i, 0) != before[i] || (i == holder && now_holder)) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(changed, expected) << "holder " << holder;
    EXPECT_TRUE(std::find(changed.begin(), changed.end(), holder) !=
                changed.end())
        << "holder must always be reported";
    EXPECT_TRUE(std::is_sorted(changed.begin(), changed.end()));
  }
}

TEST(NearestReplicaTest, CostsNeverIncreaseAsReplicasAppear) {
  Fixture f;
  NearestReplicaIndex sn(f.distances, f.placement);
  std::vector<double> prev;
  for (cdn::sys::ServerIndex i = 0; i < 3; ++i) prev.push_back(sn.cost(i, 0));
  for (cdn::sys::ServerIndex holder = 0; holder < 3; ++holder) {
    f.placement.add(holder, 0);
    sn.on_replica_added(holder, 0);
    for (cdn::sys::ServerIndex i = 0; i < 3; ++i) {
      EXPECT_LE(sn.cost(i, 0), prev[i]);
      prev[i] = sn.cost(i, 0);
    }
  }
  // Everyone replicates: all costs zero.
  for (cdn::sys::ServerIndex i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(sn.cost(i, 0), 0.0);
  }
}

TEST(NearestReplicaTest, RejectsDimensionMismatch) {
  Fixture f;
  const ReplicaPlacement other{std::vector<std::uint64_t>{100},
                               std::vector<std::uint64_t>{10}};
  EXPECT_THROW(NearestReplicaIndex(f.distances, other),
               cdn::PreconditionError);
}

TEST(NearestReplicaTest, NearestLiveSkipsDeadHolders) {
  Fixture f;
  f.placement.add(1, 0);
  f.placement.add(2, 0);
  NearestReplicaIndex sn(f.distances, f.placement);
  const auto holders = f.placement.replicators(0);

  // All up: server 0's cheapest live copy is holder 1 (cost 1 < 2 < 5).
  std::vector<std::uint8_t> up{1, 1, 1};
  auto live = sn.nearest_live(0, 0, holders, up, true);
  ASSERT_TRUE(live.has_value());
  EXPECT_FALSE(live->at_primary);
  EXPECT_EQ(live->server, 1u);
  EXPECT_DOUBLE_EQ(live->cost, 1.0);

  // Holder 1 dead: fall through to holder 2 (cost 2, still < primary's 5).
  up = {1, 0, 1};
  live = sn.nearest_live(0, 0, holders, up, true);
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(live->server, 2u);
  EXPECT_DOUBLE_EQ(live->cost, 2.0);

  // Both holders dead: only the primary remains.
  up = {1, 0, 0};
  live = sn.nearest_live(0, 0, holders, up, true);
  ASSERT_TRUE(live.has_value());
  EXPECT_TRUE(live->at_primary);
  EXPECT_DOUBLE_EQ(live->cost, 5.0);

  // ... and with the origin down too, nothing can serve the request.
  EXPECT_FALSE(sn.nearest_live(0, 0, holders, up, false).has_value());
}

TEST(NearestReplicaTest, NearestLiveAllDownIsNulloptDeterministically) {
  // Regression: total outage (every holder AND the origin down) must come
  // back empty-handed on every call — never a stale or partial answer, and
  // never an out-of-bounds read of the holder list.
  Fixture f;
  f.placement.add(0, 0);
  f.placement.add(1, 0);
  f.placement.add(2, 0);
  NearestReplicaIndex sn(f.distances, f.placement);
  const auto holders = f.placement.replicators(0);
  const std::vector<std::uint8_t> all_down{0, 0, 0};
  for (cdn::sys::ServerIndex i = 0; i < 3; ++i) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      EXPECT_FALSE(sn.nearest_live(i, 0, holders, all_down, false).has_value())
          << "server " << i;
      EXPECT_TRUE(sn.nearest_live_candidates(i, 0, holders, all_down, false, 3)
                      .empty())
          << "server " << i;
    }
  }
}

TEST(NearestReplicaTest, NearestLiveRejectsOutOfRangeHolder) {
  // The holder list comes from the placement; a corrupted or mismatched
  // list must trip the precondition instead of reading past the mask.
  Fixture f;
  const NearestReplicaIndex sn(f.distances, f.placement);
  const std::vector<cdn::sys::ServerIndex> bogus{7};
  const std::vector<std::uint8_t> up{1, 1, 1};
  EXPECT_THROW((void)sn.nearest_live(0, 0, bogus, up, true),
               cdn::PreconditionError);
  EXPECT_THROW((void)sn.nearest_live_candidates(0, 0, bogus, up, true, 3),
               cdn::PreconditionError);
}

TEST(NearestReplicaTest, CandidatesRankedByCostWithDeterministicTieBreaks) {
  Fixture f;
  f.placement.add(1, 0);
  f.placement.add(2, 0);
  NearestReplicaIndex sn(f.distances, f.placement);
  const auto holders = f.placement.replicators(0);
  const std::vector<std::uint8_t> up{1, 1, 1};

  // From server 0: holder 1 (cost 1), holder 2 (cost 2), primary (cost 5).
  const auto ranked = sn.nearest_live_candidates(0, 0, holders, up, true, 8);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].server, 1u);
  EXPECT_DOUBLE_EQ(ranked[0].cost, 1.0);
  EXPECT_EQ(ranked[1].server, 2u);
  EXPECT_TRUE(ranked[2].at_primary);
  EXPECT_DOUBLE_EQ(ranked[2].cost, 5.0);

  // Equal cost: the replica outranks the primary.  Server 2 sees the
  // replica at holder 0 and a primary both at some cost; craft a matrix
  // where they tie at 3 hops.
  const DistanceOracle tie(3, 1, {0, 1, 3, 1, 0, 1, 3, 1, 0}, {5, 4, 3});
  ReplicaPlacement p2{std::vector<std::uint64_t>{100, 100, 100},
                      std::vector<std::uint64_t>{10}};
  p2.add(0, 0);
  const NearestReplicaIndex sn2(tie, p2);
  const auto tied =
      sn2.nearest_live_candidates(2, 0, p2.replicators(0), up, true, 8);
  ASSERT_EQ(tied.size(), 2u);
  EXPECT_FALSE(tied[0].at_primary);  // replica first at equal cost 3
  EXPECT_TRUE(tied[1].at_primary);
  EXPECT_DOUBLE_EQ(tied[0].cost, tied[1].cost);
}

TEST(NearestReplicaTest, CandidatesTruncateToMaxAndSkipDead) {
  Fixture f;
  f.placement.add(1, 0);
  f.placement.add(2, 0);
  NearestReplicaIndex sn(f.distances, f.placement);
  const auto holders = f.placement.replicators(0);

  std::vector<std::uint8_t> up{1, 1, 1};
  EXPECT_EQ(sn.nearest_live_candidates(0, 0, holders, up, true, 2).size(), 2u);
  EXPECT_TRUE(sn.nearest_live_candidates(0, 0, holders, up, true, 0).empty());

  // Dead rank-1 holder: the list re-ranks instead of leaving a hole.
  up = {1, 0, 1};
  const auto ranked = sn.nearest_live_candidates(0, 0, holders, up, true, 8);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].server, 2u);
  EXPECT_TRUE(ranked[1].at_primary);
}

TEST(NearestReplicaTest, NearestLivePrefersPrimaryWhenCheaper) {
  Fixture f;
  f.placement.add(0, 0);
  NearestReplicaIndex sn(f.distances, f.placement);
  const auto holders = f.placement.replicators(0);
  const std::vector<std::uint8_t> up{1, 1, 1};
  // Server 2: primary costs 3, the replica at server 0 costs 2 — but with
  // that holder dead the primary wins again.
  auto live = sn.nearest_live(2, 0, holders, up, true);
  ASSERT_TRUE(live.has_value());
  EXPECT_FALSE(live->at_primary);
  const std::vector<std::uint8_t> dead0{0, 1, 1};
  live = sn.nearest_live(2, 0, holders, dead0, true);
  ASSERT_TRUE(live.has_value());
  EXPECT_TRUE(live->at_primary);
  EXPECT_DOUBLE_EQ(live->cost, 3.0);
}

}  // namespace
