// Unit tests for the Waxman random-graph generator.

#include <gtest/gtest.h>

#include "src/topology/shortest_paths.h"
#include "src/topology/waxman.h"
#include "src/util/error.h"

namespace {

using cdn::topology::generate_waxman;
using cdn::topology::WaxmanParams;
using cdn::util::Rng;

TEST(WaxmanTest, GeneratesRequestedNodeCount) {
  Rng rng(1);
  const auto topo = generate_waxman({.nodes = 300}, rng);
  EXPECT_EQ(topo.graph.node_count(), 300u);
  EXPECT_EQ(topo.coordinates.size(), 300u);
}

TEST(WaxmanTest, AlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const auto topo =
        generate_waxman({.nodes = 200, .alpha = 0.05, .beta = 0.05}, rng);
    EXPECT_TRUE(topo.graph.is_connected()) << "seed " << seed;
  }
}

TEST(WaxmanTest, CoordinatesInUnitSquare) {
  Rng rng(2);
  const auto topo = generate_waxman({.nodes = 100}, rng);
  for (const auto& [x, y] : topo.coordinates) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LT(y, 1.0);
  }
}

TEST(WaxmanTest, HigherAlphaGivesMoreEdges) {
  Rng r1(3), r2(3);
  const auto sparse =
      generate_waxman({.nodes = 200, .alpha = 0.05, .beta = 0.2}, r1);
  const auto dense =
      generate_waxman({.nodes = 200, .alpha = 0.4, .beta = 0.2}, r2);
  EXPECT_GT(dense.graph.edge_count(), sparse.graph.edge_count());
}

TEST(WaxmanTest, SpanningTreeFloorOnEdges) {
  Rng rng(4);
  const auto topo =
      generate_waxman({.nodes = 50, .alpha = 1e-9, .beta = 1e-9}, rng);
  // With negligible Waxman probability only the backbone tree remains.
  EXPECT_EQ(topo.graph.edge_count(), 49u);
}

TEST(WaxmanTest, DeterministicGivenRngState) {
  Rng a(5), b(5);
  const auto t1 = generate_waxman({.nodes = 150}, a);
  const auto t2 = generate_waxman({.nodes = 150}, b);
  EXPECT_EQ(t1.graph.edge_count(), t2.graph.edge_count());
  EXPECT_EQ(t1.coordinates, t2.coordinates);
}

TEST(WaxmanTest, UsableForShortestPaths) {
  Rng rng(6);
  const auto topo = generate_waxman({.nodes = 400}, rng);
  const auto dist = cdn::topology::bfs_hops(topo.graph, 0);
  for (std::uint32_t d : dist) {
    EXPECT_NE(d, cdn::topology::kUnreachableHops);
  }
}

TEST(WaxmanTest, RejectsBadParams) {
  Rng rng(7);
  EXPECT_THROW(generate_waxman({.nodes = 0}, rng), cdn::PreconditionError);
  EXPECT_THROW(generate_waxman({.nodes = 10, .alpha = 0.0}, rng),
               cdn::PreconditionError);
  EXPECT_THROW(generate_waxman({.nodes = 10, .alpha = 0.5, .beta = 1.5}, rng),
               cdn::PreconditionError);
}

}  // namespace
