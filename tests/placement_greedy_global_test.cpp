// Unit tests for the greedy-global replication baseline.

#include <gtest/gtest.h>

#include "src/cdn/cost.h"
#include "src/placement/greedy_global.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using cdn::placement::greedy_global;
using cdn::placement::greedy_global_with_budgets;
using cdn::placement::GreedyGlobalOptions;
using cdn::test::TestSystem;

TEST(GreedyGlobalTest, CreatesReplicasAndReducesCost) {
  const auto t = TestSystem::make();
  const auto result = greedy_global(*t.system);
  EXPECT_GT(result.replicas_created, 0u);
  ASSERT_GE(result.cost_trajectory.size(), 2u);
  EXPECT_LT(result.cost_trajectory.back(), result.cost_trajectory.front());
}

TEST(GreedyGlobalTest, CostTrajectoryIsMonotoneDecreasing) {
  const auto t = TestSystem::make();
  const auto result = greedy_global(*t.system);
  for (std::size_t i = 1; i < result.cost_trajectory.size(); ++i) {
    EXPECT_LE(result.cost_trajectory[i], result.cost_trajectory[i - 1])
        << "iteration " << i;
  }
}

TEST(GreedyGlobalTest, RespectsStorageBudgets) {
  const auto t = TestSystem::make();
  const auto result = greedy_global(*t.system);
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    const auto server = static_cast<cdn::sys::ServerIndex>(i);
    EXPECT_LE(result.placement.used_bytes(server),
              t.system->server_storage(server));
  }
}

TEST(GreedyGlobalTest, PredictionMatchesRecomputedCost) {
  const auto t = TestSystem::make();
  const auto result = greedy_global(*t.system);
  cdn::sys::NearestReplicaIndex rebuilt(t.system->distances(),
                                        result.placement);
  EXPECT_NEAR(result.predicted_total_cost,
              cdn::sys::total_remote_cost(t.system->demand(), rebuilt),
              1e-6);
}

TEST(GreedyGlobalTest, NoCachingFlag) {
  const auto t = TestSystem::make();
  const auto result = greedy_global(*t.system);
  EXPECT_FALSE(result.caching_enabled);
  EXPECT_EQ(result.cache_bytes(0), 0u);
  for (double h : result.modeled_hit) EXPECT_DOUBLE_EQ(h, 0.0);
}

TEST(GreedyGlobalTest, MaxReplicasCapStops) {
  const auto t = TestSystem::make();
  GreedyGlobalOptions options;
  options.max_replicas = 3;
  const auto result = greedy_global(*t.system, options);
  EXPECT_EQ(result.replicas_created, 3u);
}

TEST(GreedyGlobalTest, FirstReplicaIsTheHighestBenefit) {
  // With symmetric primaries, the first replica must target a high-volume
  // site (benefit ~ volume x distance).
  const auto t = TestSystem::make();
  GreedyGlobalOptions options;
  options.max_replicas = 1;
  const auto result = greedy_global(*t.system, options);
  // Find the replicated site; it must be one of the "high" class (ids 6,7).
  bool found_high = false;
  for (std::size_t j = 0; j < t.system->site_count(); ++j) {
    for (std::size_t i = 0; i < t.system->server_count(); ++i) {
      if (result.placement.is_replicated(
              static_cast<cdn::sys::ServerIndex>(i),
              static_cast<cdn::sys::SiteIndex>(j))) {
        found_high = std::string(t.catalog->class_label(
                         static_cast<cdn::workload::SiteId>(j))) == "high";
      }
    }
  }
  EXPECT_TRUE(found_high);
}

TEST(GreedyGlobalTest, ZeroBudgetsCreateNothing) {
  const auto t = TestSystem::make();
  const std::vector<std::uint64_t> budgets(t.system->server_count(), 0);
  const auto result = greedy_global_with_budgets(*t.system, budgets);
  EXPECT_EQ(result.replicas_created, 0u);
  EXPECT_DOUBLE_EQ(result.cost_trajectory.front(),
                   result.cost_trajectory.back());
}

TEST(GreedyGlobalTest, BudgetsVectorMustMatchServerCount) {
  const auto t = TestSystem::make();
  const std::vector<std::uint64_t> wrong(2, 100);
  EXPECT_THROW(greedy_global_with_budgets(*t.system, wrong),
               cdn::PreconditionError);
}

TEST(GreedyGlobalTest, LargerStorageNeverWorsensFinalCost) {
  const auto small = TestSystem::make(4, 6, 2, 100, 0.05);
  const auto large = TestSystem::make(4, 6, 2, 100, 0.25);
  const auto r_small = greedy_global(*small.system);
  const auto r_large = greedy_global(*large.system);
  EXPECT_LE(r_large.predicted_total_cost, r_small.predicted_total_cost);
}

TEST(GreedyGlobalTest, DeterministicAcrossRuns) {
  const auto t = TestSystem::make();
  const auto a = greedy_global(*t.system);
  const auto b = greedy_global(*t.system);
  EXPECT_EQ(a.replicas_created, b.replicas_created);
  EXPECT_DOUBLE_EQ(a.predicted_total_cost, b.predicted_total_cost);
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    for (std::size_t j = 0; j < t.system->site_count(); ++j) {
      EXPECT_EQ(a.placement.is_replicated(
                    static_cast<cdn::sys::ServerIndex>(i),
                    static_cast<cdn::sys::SiteIndex>(j)),
                b.placement.is_replicated(
                    static_cast<cdn::sys::ServerIndex>(i),
                    static_cast<cdn::sys::SiteIndex>(j)));
    }
  }
}

}  // namespace
