// Kill-and-resume determinism tests (the headline invariant of
// docs/RECOVERY.md): for any kill point, resuming from the flushed
// checkpoint produces a SimulationReport byte-identical to the
// uninterrupted run — including under fault schedules, with metrics and
// trace sinks attached, and on the parallel sharded engine.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/placement/fixed_split.h"
#include "src/placement/hybrid_greedy.h"
#include "src/recover/checkpoint.h"
#include "src/sim/sim_checkpoint.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::placement::hybrid_greedy;
using cdn::placement::pure_caching;
using cdn::sim::simulate;
using cdn::sim::SimulationConfig;
using cdn::sim::SimulationReport;
using cdn::test::TestSystem;

class KillResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hybridcdn_killresume_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

SimulationConfig base_config(std::uint64_t requests = 40'000,
                             std::uint64_t seed = 17) {
  SimulationConfig sc;
  sc.total_requests = requests;
  sc.warmup_fraction = 0.3;
  sc.seed = seed;
  return sc;
}

/// Runs with a pre-set stop flag so the engine halts at its first probe
/// after `kill_at` requests (sequential: probe stride = the request
/// cadence), flushing a checkpoint.  Returns the interrupt request index.
std::uint64_t killed_run(const TestSystem& t,
                         const placement::PlacementResult& placement,
                         SimulationConfig cfg, const std::string& ckpt,
                         std::uint64_t kill_at) {
  std::atomic<bool> stop{true};
  cfg.checkpoint_path = ckpt;
  cfg.checkpoint_every_requests = kill_at;
  cfg.stop = &stop;
  try {
    simulate(*t.system, placement, cfg);
  } catch (const recover::Interrupted& e) {
    EXPECT_EQ(e.checkpoint_path(), ckpt);
    EXPECT_GT(e.request_index(), 0u);
    EXPECT_LT(e.request_index(), cfg.total_requests);
    return e.request_index();
  }
  ADD_FAILURE() << "run was not interrupted";
  return 0;
}

SimulationReport resumed_run(const TestSystem& t,
                             const placement::PlacementResult& placement,
                             SimulationConfig cfg, const std::string& ckpt) {
  cfg.resume_path = ckpt;
  return simulate(*t.system, placement, cfg);
}

void expect_byte_identical(const SimulationReport& a,
                           const SimulationReport& b) {
  EXPECT_EQ(sim::serialize_report(a), sim::serialize_report(b));
  EXPECT_EQ(sim::report_digest(a), sim::report_digest(b));
}

TEST_F(KillResumeTest, SequentialResumeIsByteIdenticalAtManyKillPoints) {
  const auto t = TestSystem::make(6);
  const auto placement = hybrid_greedy(*t.system);
  const auto cfg = base_config();
  const auto reference = simulate(*t.system, placement, cfg);

  // Kill points straddle the warm-up boundary (12k), window boundaries and
  // both ends of the run.
  const std::uint64_t kills[] = {1,      7,      4'096,  11'999, 12'000,
                                 12'001, 20'000, 33'333, 39'998, 39'999};
  for (const std::uint64_t kill_at : kills) {
    const std::uint64_t at =
        killed_run(t, placement, cfg, path("ck.bin"), kill_at);
    EXPECT_EQ(at, kill_at);
    const auto resumed = resumed_run(t, placement, cfg, path("ck.bin"));
    expect_byte_identical(resumed, reference);
  }
}

TEST_F(KillResumeTest, SequentialResumeSurvivesADoubleKill) {
  const auto t = TestSystem::make(6);
  const auto placement = hybrid_greedy(*t.system);
  const auto cfg = base_config();
  const auto reference = simulate(*t.system, placement, cfg);

  killed_run(t, placement, cfg, path("ck.bin"), 9'000);
  // Second leg resumes AND gets killed again further in.
  std::atomic<bool> stop{true};
  auto leg2 = cfg;
  leg2.resume_path = path("ck.bin");
  leg2.checkpoint_path = path("ck2.bin");
  leg2.checkpoint_every_requests = 9'000;  // next probe: request 18'000
  leg2.stop = &stop;
  try {
    simulate(*t.system, placement, leg2);
    FAIL() << "second leg not interrupted";
  } catch (const recover::Interrupted& e) {
    EXPECT_EQ(e.request_index(), 18'000u);
  }
  const auto resumed = resumed_run(t, placement, cfg, path("ck2.bin"));
  expect_byte_identical(resumed, reference);
}

TEST_F(KillResumeTest, ResumeUnderActiveFaultsIsByteIdentical) {
  const auto t = TestSystem::make(6);
  const auto placement = hybrid_greedy(*t.system);
  fault::FaultSchedule faults;
  faults.add_server_outage(1, 10'000, 25'000);
  faults.add_server_outage(3, 15'000, 30'000);
  faults.add_origin_outage(0, 18'000, 22'000);
  faults.add_link_degradation(2, 5'000, 35'000, 2.5);
  auto cfg = base_config();
  cfg.faults = &faults;
  cfg.slo_ms = 40.0;
  const auto reference = simulate(*t.system, placement, cfg);
  ASSERT_GT(reference.failover_requests, 0u);

  // Kill points inside outages, at transition edges, and mid-recovery.
  for (const std::uint64_t kill_at :
       {std::uint64_t{9'999}, std::uint64_t{10'000}, std::uint64_t{17'000},
        std::uint64_t{25'000}, std::uint64_t{25'001}, std::uint64_t{31'000}}) {
    const std::uint64_t at =
        killed_run(t, placement, cfg, path("ck.bin"), kill_at);
    EXPECT_EQ(at, kill_at);
    const auto resumed = resumed_run(t, placement, cfg, path("ck.bin"));
    expect_byte_identical(resumed, reference);
    EXPECT_EQ(resumed.cold_restarts, reference.cold_restarts);
    EXPECT_EQ(resumed.fault_transitions, reference.fault_transitions);
  }
}

TEST_F(KillResumeTest, ResumeWithMetricsReproducesTheFullRegistry) {
  const auto t = TestSystem::make(6);
  const auto placement = hybrid_greedy(*t.system);
  auto cfg = base_config();
  cfg.metrics_windows = 10;
  obs::Registry ref_registry;
  {
    auto ref_cfg = cfg;
    ref_cfg.metrics = &ref_registry;
    simulate(*t.system, placement, ref_cfg);
  }

  auto kill_cfg = cfg;
  obs::Registry kill_registry;
  kill_cfg.metrics = &kill_registry;
  killed_run(t, placement, kill_cfg, path("ck.bin"), 21'000);

  // The resumed run gets a FRESH registry; the checkpoint replays the
  // pre-kill windows and counters into it.
  obs::Registry registry;
  auto resume_cfg = cfg;
  resume_cfg.metrics = &registry;
  resumed_run(t, placement, resume_cfg, path("ck.bin"));

  for (const char* name :
       {"sim/window/requests", "sim/window/hit_ratio", "sim/window/local",
        "sim/window/eligible", "sim/window/eligible_hits"}) {
    const auto& a = ref_registry.series(name).values();
    const auto& b = registry.series(name).values();
    EXPECT_EQ(a, b) << name;
  }
  for (const char* name :
       {"sim/cause/cache-hit", "sim/cause/cache-miss", "sim/cause/replica",
        "sim/cause/stale-refresh", "sim/cause/uncacheable"}) {
    EXPECT_EQ(ref_registry.counter(name).value(),
              registry.counter(name).value())
        << name;
  }
  EXPECT_EQ(registry.gauge("sim/recover/resumed").value(), 1.0);
  EXPECT_EQ(registry.gauge("sim/recover/resume_request_index").value(),
            21'000.0);
}

TEST_F(KillResumeTest, ResumeWithTraceSinkReplaysSampledEvents) {
  const auto t = TestSystem::make(6);
  const auto placement = hybrid_greedy(*t.system);
  const auto cfg = base_config(20'000);

  obs::TraceSink ref_sink(0.05, 99, 100'000);
  {
    auto ref_cfg = cfg;
    ref_cfg.trace_sink = &ref_sink;
    simulate(*t.system, placement, ref_cfg);
  }

  obs::TraceSink kill_sink(0.05, 99, 100'000);
  auto kill_cfg = cfg;
  kill_cfg.trace_sink = &kill_sink;
  killed_run(t, placement, kill_cfg, path("ck.bin"), 8'192);

  obs::TraceSink sink(0.05, 99, 100'000);
  auto resume_cfg = cfg;
  resume_cfg.trace_sink = &sink;
  resumed_run(t, placement, resume_cfg, path("ck.bin"));

  ASSERT_EQ(sink.events().size(), ref_sink.events().size());
  for (std::size_t i = 0; i < sink.events().size(); ++i) {
    EXPECT_EQ(sink.events()[i].t, ref_sink.events()[i].t);
    EXPECT_EQ(sink.events()[i].latency_ms, ref_sink.events()[i].latency_ms);
  }
}

TEST_F(KillResumeTest, ParallelResumeIsByteIdenticalAndThreadInvariant) {
  const auto t = TestSystem::make(8);
  const auto placement = hybrid_greedy(*t.system);
  auto cfg = base_config(60'000);
  cfg.threads = 4;
  cfg.shards = 8;
  const auto reference = simulate(*t.system, placement, cfg);
  ASSERT_EQ(reference.shards_used, 8u);

  for (const std::uint64_t kill_at :
       {std::uint64_t{5'000}, std::uint64_t{20'000}, std::uint64_t{59'000}}) {
    const std::uint64_t at =
        killed_run(t, placement, cfg, path("ck.bin"), kill_at);
    EXPECT_GT(at, 0u);
    // Resume with a DIFFERENT thread count: shards fix the result, threads
    // only change the schedule.
    auto resume_cfg = cfg;
    resume_cfg.threads = 2;
    const auto resumed = resumed_run(t, placement, resume_cfg, path("ck.bin"));
    expect_byte_identical(resumed, reference);
  }
}

TEST_F(KillResumeTest, ParallelResumeReproducesRegistryWindows) {
  const auto t = TestSystem::make(8);
  const auto placement = pure_caching(*t.system);
  auto cfg = base_config(60'000);
  cfg.threads = 3;
  cfg.shards = 6;
  cfg.metrics_windows = 8;

  obs::Registry ref_registry;
  {
    auto ref_cfg = cfg;
    ref_cfg.metrics = &ref_registry;
    simulate(*t.system, placement, ref_cfg);
  }

  obs::Registry kill_registry;
  auto kill_cfg = cfg;
  kill_cfg.metrics = &kill_registry;
  killed_run(t, placement, kill_cfg, path("ck.bin"), 15'000);

  obs::Registry registry;
  auto resume_cfg = cfg;
  resume_cfg.metrics = &registry;
  resumed_run(t, placement, resume_cfg, path("ck.bin"));

  for (const char* name : {"sim/window/requests", "sim/window/hit_ratio"}) {
    EXPECT_EQ(ref_registry.series(name).values(),
              registry.series(name).values())
        << name;
  }
}

TEST_F(KillResumeTest, ManySeedsSequentialAndParallel) {
  // The acceptance bar: ten seeds, randomised kill points derived from the
  // seed, both engines, all byte-identical after resume.
  const auto t = TestSystem::make(8);
  const auto placement = hybrid_greedy(*t.system);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto cfg = base_config(30'000, seed);
    if (seed % 2 == 0) {  // even seeds exercise the parallel engine
      cfg.threads = 4;
      cfg.shards = 4;
    }
    const auto reference = simulate(*t.system, placement, cfg);
    const std::uint64_t kill_at = 1'000 + (seed * 2'923) % 28'000;
    killed_run(t, placement, cfg, path("ck.bin"), kill_at);
    const auto resumed = resumed_run(t, placement, cfg, path("ck.bin"));
    expect_byte_identical(resumed, reference);
  }
}

TEST_F(KillResumeTest, MismatchedResumeConfigurationsAreRefused) {
  const auto t = TestSystem::make(6);
  const auto placement = hybrid_greedy(*t.system);
  const auto cfg = base_config();
  killed_run(t, placement, cfg, path("ck.bin"), 10'000);

  const auto expect_refused = [&](SimulationConfig bad, const char* section) {
    bad.resume_path = path("ck.bin");
    try {
      simulate(*t.system, placement, bad);
      FAIL() << "accepted a mismatched " << section;
    } catch (const PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find(section), std::string::npos);
    }
  };

  {  // different seed → "config"
    auto bad = cfg;
    bad.seed = 18;
    expect_refused(bad, "config");
  }
  {  // different run length → "config"
    auto bad = cfg;
    bad.total_requests = 50'000;
    expect_refused(bad, "config");
  }
  {  // sequential checkpoint into the parallel engine → "engine"
    auto bad = cfg;
    bad.threads = 4;
    bad.shards = 4;
    expect_refused(bad, "engine");
  }
  {  // a fault schedule the checkpoint never saw → "faults"
    auto bad = cfg;
    fault::FaultSchedule faults;
    faults.add_server_outage(0, 1'000, 2'000);
    bad.faults = &faults;
    expect_refused(bad, "faults");
  }
  {  // different placement → "placement"
    auto bad = cfg;
    bad.resume_path = path("ck.bin");
    const auto other = pure_caching(*t.system);
    EXPECT_THROW(simulate(*t.system, other, bad), PreconditionError);
  }
}

TEST_F(KillResumeTest, CorruptedCheckpointRefusedCleanly) {
  const auto t = TestSystem::make(6);
  const auto placement = hybrid_greedy(*t.system);
  const auto cfg = base_config();
  killed_run(t, placement, cfg, path("ck.bin"), 10'000);

  // Flip one byte in the middle of the payload.
  std::fstream f(path("ck.bin"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(200);
  f.put('\x7f');
  f.close();

  auto resume_cfg = cfg;
  resume_cfg.resume_path = path("ck.bin");
  EXPECT_THROW(simulate(*t.system, placement, resume_cfg), PreconditionError);
}

TEST_F(KillResumeTest, CheckpointCadenceDoesNotChangeTheReport) {
  // A full, uninterrupted run WITH checkpointing enabled must still be
  // byte-identical to one without — checkpoint writes are pure observers.
  const auto t = TestSystem::make(6);
  const auto placement = hybrid_greedy(*t.system);
  const auto cfg = base_config();
  const auto reference = simulate(*t.system, placement, cfg);

  auto ck_cfg = cfg;
  ck_cfg.checkpoint_path = path("ck.bin");
  ck_cfg.checkpoint_every_requests = 7'000;
  const auto with_ckpt = simulate(*t.system, placement, ck_cfg);
  expect_byte_identical(with_ckpt, reference);
  EXPECT_TRUE(std::filesystem::exists(path("ck.bin")));

  // The final checkpoint resumes to the same report too.
  const auto resumed = resumed_run(t, placement, cfg, path("ck.bin"));
  expect_byte_identical(resumed, reference);

  auto par_cfg = cfg;
  par_cfg.threads = 4;
  par_cfg.shards = 4;
  const auto par_reference = simulate(*t.system, placement, par_cfg);
  auto par_ck = par_cfg;
  par_ck.checkpoint_path = path("par.bin");
  par_ck.checkpoint_every_requests = 7'000;
  const auto par_with = simulate(*t.system, placement, par_ck);
  expect_byte_identical(par_with, par_reference);
}

TEST(CheckpointConfigTest, IncoherentFlagCombinationsRejected) {
  SimulationConfig cfg;
  cfg.checkpoint_every_requests = 100;  // cadence without a path
  EXPECT_THROW(cfg.validate(), PreconditionError);

  cfg = SimulationConfig{};
  cfg.checkpoint_every_seconds = 1.0;  // time cadence without a path
  EXPECT_THROW(cfg.validate(), PreconditionError);

  cfg = SimulationConfig{};
  cfg.checkpoint_path = "ck.bin";  // path without any trigger
  EXPECT_THROW(cfg.validate(), PreconditionError);

  cfg = SimulationConfig{};
  cfg.checkpoint_path = "ck.bin";
  cfg.checkpoint_every_seconds = -1.0;  // negative seconds
  EXPECT_THROW(cfg.validate(), PreconditionError);

  cfg = SimulationConfig{};
  cfg.checkpoint_path = "ck.bin";
  cfg.checkpoint_every_seconds =
      std::numeric_limits<double>::quiet_NaN();  // NaN seconds
  EXPECT_THROW(cfg.validate(), PreconditionError);

  // Coherent combinations pass.
  cfg = SimulationConfig{};
  cfg.checkpoint_path = "ck.bin";
  cfg.checkpoint_every_requests = 100;
  EXPECT_NO_THROW(cfg.validate());

  std::atomic<bool> stop{false};
  cfg = SimulationConfig{};
  cfg.checkpoint_path = "ck.bin";
  cfg.stop = &stop;
  EXPECT_NO_THROW(cfg.validate());

  cfg = SimulationConfig{};
  cfg.resume_path = "ck.bin";  // resume alone is fine
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
