// Cross-module consistency: the hybrid greedy's candidate benefit
// (Figure 2 lines 9-17) must equal the actual drop in the modelled cost D
// when the candidate is materialised (kAtInit mode keeps the model state
// deterministic, so the identity is exact).

#include <gtest/gtest.h>

#include "src/cdn/cost.h"
#include "src/placement/hybrid_greedy.h"
#include "src/placement/model_support.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::test::TestSystem;

/// Computes every feasible candidate's benefit on the initial (no-replica)
/// state and returns the maximum.
double best_initial_benefit(const sys::CdnSystem& system) {
  placement::ModelContext context(system, model::PbMode::kAtInit);
  const auto states = context.make_states();
  const auto hit = placement::modeled_hit_matrix(states);
  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  sys::NearestReplicaIndex nearest(system.distances(), placement);
  double best = 0.0;
  for (std::size_t i = 0; i < system.server_count(); ++i) {
    for (std::size_t j = 0; j < system.site_count(); ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (!placement.can_add(server, site)) continue;
      best = std::max(best, placement::hybrid_candidate_benefit(
                                system, placement, nearest, states[i], hit,
                                server, site));
    }
  }
  return best;
}

TEST(BenefitConsistencyTest, FirstTrajectoryDropEqualsBestBenefit) {
  const auto t = TestSystem::make();
  const double expected = best_initial_benefit(*t.system);
  ASSERT_GT(expected, 0.0);

  placement::HybridGreedyOptions options;
  options.max_replicas = 1;
  const auto result = placement::hybrid_greedy(*t.system, options);
  ASSERT_EQ(result.cost_trajectory.size(), 2u);
  const double realized =
      result.cost_trajectory[0] - result.cost_trajectory[1];
  EXPECT_NEAR(realized, expected, 1e-6 * expected);
}

TEST(BenefitConsistencyTest, EveryTrajectoryStepIsARealizedBenefit) {
  // Full run: each step's drop must be positive and no larger than the
  // previous step's drop would suggest for an exchange-monotone objective?
  // (The hybrid objective is NOT exchange-monotone because of the cache
  // term, so we only assert positivity and final-cost agreement.)
  const auto t = TestSystem::make();
  const auto result = placement::hybrid_greedy(*t.system);
  for (std::size_t i = 1; i < result.cost_trajectory.size(); ++i) {
    EXPECT_GT(result.cost_trajectory[i - 1] - result.cost_trajectory[i],
              0.0)
        << "step " << i;
  }
  // Final trajectory point equals the recomputed prediction.
  EXPECT_NEAR(result.cost_trajectory.back(), result.predicted_total_cost,
              1e-6 * result.predicted_total_cost);
}

TEST(BenefitConsistencyTest, BenefitMatchesBruteForceCostDelta) {
  // Pick an arbitrary feasible candidate and verify the closed-form benefit
  // equals D(before) - D(after) computed from scratch.
  const auto t = TestSystem::make();
  const auto& system = *t.system;
  placement::ModelContext context(system, model::PbMode::kAtInit);
  auto states = context.make_states();
  const auto hit = placement::modeled_hit_matrix(states);
  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  sys::NearestReplicaIndex nearest(system.distances(), placement);

  const auto server = static_cast<sys::ServerIndex>(1);
  sys::SiteIndex site = 0;
  for (std::size_t j = 0; j < system.site_count(); ++j) {
    if (placement.can_add(server, static_cast<sys::SiteIndex>(j))) {
      site = static_cast<sys::SiteIndex>(j);
      break;
    }
  }
  const double d_before = sys::total_remote_cost(
      system.demand(), nearest,
      placement::hit_fn(hit, system.site_count()));
  const double benefit = placement::hybrid_candidate_benefit(
      system, placement, nearest, states[server], hit, server, site);

  placement.add(server, site);
  nearest.on_replica_added(server, site);
  states[server].replicate(site);
  const auto hit_after = placement::modeled_hit_matrix(states);
  const double d_after = sys::total_remote_cost(
      system.demand(), nearest,
      placement::hit_fn(hit_after, system.site_count()));

  EXPECT_NEAR(d_before - d_after, benefit,
              1e-9 * std::max(1.0, std::abs(benefit)));
}

}  // namespace
