// Placement text (de)serialization — the durable form the redirector
// daemon hot-reloads.  Covers canonical roundtrips, digest stability,
// file I/O, and the validation wall: a file that disagrees with the
// CdnSystem (shape, ranges, duplicates, capacity, emptiness) must throw
// PreconditionError with a line/col diagnostic and never become state.

#include "src/placement/placement_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "src/util/error.h"
#include "test_support.h"

namespace cdn::placement {
namespace {

std::filesystem::path temp_path(const char* tag) {
  return std::filesystem::temp_directory_path() /
         ("hybridcdn_pio_" + std::string(tag) + "_" +
          std::to_string(::getpid()) + ".txt");
}

sys::ReplicaPlacement make_placement(const test::TestSystem& t) {
  sys::ReplicaPlacement placement(t.system->server_storage(),
                                  t.system->site_bytes());
  placement.add(1, 0);
  placement.add(2, 0);
  placement.add(3, 5);
  return placement;
}

TEST(PlacementIo, SerializeIsCanonicalAndRoundtrips) {
  const test::TestSystem t = test::TestSystem::make();
  const sys::ReplicaPlacement placement = make_placement(t);

  const std::string text = serialize_placement(placement);
  EXPECT_EQ(text,
            "placement 4 8\n"
            "replica 1 0\n"
            "replica 2 0\n"
            "replica 3 5\n");

  const PlacementResult parsed = parse_placement_result(text, *t.system);
  EXPECT_EQ(parsed.algorithm, "reloaded");
  EXPECT_EQ(parsed.replicas_created, 3u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(parsed.placement.is_replicated(i, j),
                placement.is_replicated(i, j))
          << "(" << i << ", " << j << ")";
    }
  }
  // The rebuilt nearest index is consistent: from server 0, site 0's
  // nearest copy is the replica at server 1 (line distance 1).
  const sys::NearestCopy& nearest = parsed.nearest.nearest(0, 0);
  EXPECT_FALSE(nearest.at_primary);
  EXPECT_EQ(nearest.server, 1u);
  EXPECT_DOUBLE_EQ(nearest.cost, 1.0);
}

TEST(PlacementIo, DigestMatchesIffPlacementsMatch) {
  const test::TestSystem t = test::TestSystem::make();
  const sys::ReplicaPlacement a = make_placement(t);
  sys::ReplicaPlacement b(t.system->server_storage(), t.system->site_bytes());
  // Same replicas added in a different order: identical digest.
  b.add(3, 5);
  b.add(2, 0);
  b.add(1, 0);
  EXPECT_EQ(placement_digest(a), placement_digest(b));
  // One replica moved: different digest.
  b.remove(1, 0);
  b.add(0, 0);
  EXPECT_NE(placement_digest(a), placement_digest(b));
}

TEST(PlacementIo, CommentsBlankLinesAndOrderAreTolerated) {
  const test::TestSystem t = test::TestSystem::make();
  const PlacementResult parsed = parse_placement_result(
      "# replan produced 2026-08-09\n"
      "placement 4 8   # shape\n"
      "\n"
      "replica 2 0\n"
      "replica 1 0  # out of canonical order on purpose\n",
      *t.system);
  EXPECT_EQ(parsed.replicas_created, 2u);
  EXPECT_TRUE(parsed.placement.is_replicated(1, 0));
  EXPECT_TRUE(parsed.placement.is_replicated(2, 0));
}

TEST(PlacementIo, SaveAndLoadRoundtripThroughAFile) {
  const test::TestSystem t = test::TestSystem::make();
  const sys::ReplicaPlacement placement = make_placement(t);
  const auto path = temp_path("roundtrip");
  save_placement(placement, path.string());

  const PlacementResult loaded = load_placement_result(path.string(),
                                                       *t.system, "from-disk");
  EXPECT_EQ(loaded.algorithm, "from-disk");
  EXPECT_EQ(placement_digest(loaded.placement), placement_digest(placement));
  std::filesystem::remove(path);
}

TEST(PlacementIo, LoadOfMissingFileThrows) {
  const test::TestSystem t = test::TestSystem::make();
  EXPECT_THROW(
      (void)load_placement_result("/nonexistent/plan.txt", *t.system),
      PreconditionError);
}

TEST(PlacementIo, ShapeMismatchIsRejectedWithLocation) {
  const test::TestSystem t = test::TestSystem::make();
  try {
    (void)parse_placement_result("placement 8 4\nreplica 1 0\n", *t.system);
    FAIL() << "wrong shape accepted";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("8x4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4x8"), std::string::npos) << msg;
  }
}

TEST(PlacementIo, ReplicaBeforeHeaderIsRejected) {
  const test::TestSystem t = test::TestSystem::make();
  try {
    (void)parse_placement_result("replica 1 0\nplacement 4 8\n", *t.system);
    FAIL() << "headerless body accepted";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("header"), std::string::npos);
  }
}

TEST(PlacementIo, DuplicateAndOutOfRangeReplicasAreRejected) {
  const test::TestSystem t = test::TestSystem::make();
  EXPECT_THROW((void)parse_placement_result(
                   "placement 4 8\nreplica 1 0\nreplica 1 0\n", *t.system),
               PreconditionError);
  EXPECT_THROW((void)parse_placement_result("placement 4 8\nreplica 4 0\n",
                                            *t.system),
               PreconditionError);
  EXPECT_THROW((void)parse_placement_result("placement 4 8\nreplica 0 8\n",
                                            *t.system),
               PreconditionError);
}

TEST(PlacementIo, EmptyPlacementIsRejected) {
  const test::TestSystem t = test::TestSystem::make();
  EXPECT_THROW((void)parse_placement_result("placement 4 8\n", *t.system),
               PreconditionError);
}

TEST(PlacementIo, StorageBudgetIsEnforcedAtParseTime) {
  // Default storage fraction (0.15 of total site bytes) cannot hold every
  // site on one server; the overflowing replica line is the one named.
  const test::TestSystem t = test::TestSystem::make();
  std::string text = "placement 4 8\n";
  for (int j = 0; j < 8; ++j) {
    text += "replica 0 " + std::to_string(j) + "\n";
  }
  try {
    (void)parse_placement_result(text, *t.system);
    FAIL() << "over-capacity placement accepted";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("storage budget"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace cdn::placement
