// Unit tests for the observability metric primitives and registry.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/obs/registry.h"
#include "src/util/error.h"

namespace {

using cdn::obs::Histogram;
using cdn::obs::Registry;
using cdn::obs::write_json_file;

TEST(CounterTest, AddsAndMerges) {
  Registry r;
  r.counter("a").add();
  r.counter("a").add(4);
  EXPECT_EQ(r.counter("a").value(), 5u);
  Registry other;
  other.counter("a").add(10);
  other.counter("b").add(1);
  r.merge(other);
  EXPECT_EQ(r.counter("a").value(), 15u);
  EXPECT_EQ(r.counter("b").value(), 1u);
  r.counter("a").reset();
  EXPECT_EQ(r.counter("a").value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Registry r;
  r.gauge("g").set(1.5);
  r.gauge("g").set(-2.5);
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), -2.5);
  Registry other;
  other.gauge("g").set(7.0);
  r.merge(other);
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 7.0);
}

TEST(HistogramTest, BucketsAreRightClosed) {
  // Boundaries {1, 2} => buckets (-inf,1], (1,2], (2,inf).
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(1.0);  // boundary: belongs to the first bucket
  h.observe(1.5);
  h.observe(2.0);  // boundary: second bucket
  h.observe(99.0);
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.moments().min(), 0.5);
  EXPECT_DOUBLE_EQ(h.moments().max(), 99.0);
}

TEST(HistogramTest, RejectsBadBoundaries) {
  EXPECT_THROW(Histogram({}), cdn::PreconditionError);
  EXPECT_THROW(Histogram({1.0, 1.0}), cdn::PreconditionError);
  EXPECT_THROW(Histogram({2.0, 1.0}), cdn::PreconditionError);
}

TEST(HistogramTest, MergeIsExact) {
  Histogram a({10.0, 20.0});
  Histogram b({10.0, 20.0});
  a.observe(5.0);
  b.observe(15.0);
  b.observe(25.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[1], 1u);
  EXPECT_EQ(a.buckets()[2], 1u);
  EXPECT_DOUBLE_EQ(a.moments().mean(), 15.0);

  Histogram mismatched({1.0});
  EXPECT_THROW(a.merge(mismatched), cdn::PreconditionError);
}

TEST(RegistryTest, HistogramReregistrationChecksBoundaries) {
  Registry r;
  r.histogram("h", {1.0, 2.0}).observe(0.5);
  // Same boundaries: same instance.
  EXPECT_EQ(r.histogram("h", {1.0, 2.0}).count(), 1u);
  EXPECT_THROW(r.histogram("h", {3.0}), cdn::PreconditionError);
}

TEST(SeriesTest, AppendsAndConcatenatesOnMerge) {
  Registry r;
  r.series("s").push(1.0);
  r.series("s").push(2.0);
  EXPECT_DOUBLE_EQ(r.series("s").sum(), 3.0);
  Registry other;
  other.series("s").push(4.0);
  r.merge(other);
  ASSERT_EQ(r.series("s").size(), 3u);
  EXPECT_DOUBLE_EQ(r.series("s").values().back(), 4.0);
}

TEST(TableTest, ValidatesRowWidthAndMergeColumns) {
  Registry r;
  auto& t = r.table("t", {"x", "y"});
  t.add_row({1.0, 2.0});
  EXPECT_THROW(t.add_row({1.0}), cdn::PreconditionError);
  EXPECT_THROW(r.table("t", {"x"}), cdn::PreconditionError);
  Registry other;
  other.table("t", {"x", "y"}).add_row({3.0, 4.0});
  r.merge(other);
  ASSERT_EQ(r.table("t", {"x", "y"}).row_count(), 2u);
}

TEST(TimerStatTest, AccumulatesAndMerges) {
  Registry r;
  auto& t = r.timer("t");
  t.record_ns(1'000'000);  // 1 ms
  t.record_ns(3'000'000);  // 3 ms
  EXPECT_EQ(t.count(), 2u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.004);
  EXPECT_DOUBLE_EQ(t.per_call_ms().mean(), 2.0);
  Registry other;
  other.timer("t").record_ns(2'000'000);
  r.merge(other);
  EXPECT_EQ(r.timer("t").count(), 3u);
}

TEST(RegistryTest, FindDoesNotCreate) {
  Registry r;
  EXPECT_EQ(r.find_counter("missing"), nullptr);
  EXPECT_EQ(r.find_gauge("missing"), nullptr);
  EXPECT_EQ(r.find_histogram("missing"), nullptr);
  EXPECT_EQ(r.find_series("missing"), nullptr);
  EXPECT_EQ(r.find_table("missing"), nullptr);
  EXPECT_EQ(r.find_timer("missing"), nullptr);
  EXPECT_EQ(r.metric_count(), 0u);
  r.counter("c");
  r.gauge("g");
  EXPECT_EQ(r.metric_count(), 2u);
  EXPECT_NE(r.find_counter("c"), nullptr);
}

TEST(RegistryTest, MergePullsInMissingMetrics) {
  Registry a, b;
  b.histogram("h", {1.0}).observe(0.5);
  b.series("s").push(9.0);
  b.table("t", {"c"}).add_row({1.0});
  b.timer("w").record_ns(5);
  a.merge(b);
  ASSERT_NE(a.find_histogram("h"), nullptr);
  EXPECT_EQ(a.find_histogram("h")->count(), 1u);
  ASSERT_NE(a.find_series("s"), nullptr);
  ASSERT_NE(a.find_table("t"), nullptr);
  ASSERT_NE(a.find_timer("w"), nullptr);
}

TEST(RegistryTest, JsonSnapshotContainsEveryKind) {
  Registry r;
  r.counter("req/total").add(42);
  r.gauge("hit_ratio").set(0.25);
  r.histogram("lat", {1.0, 2.0}).observe(1.5);
  r.series("cost").push(3.5);
  r.table("iter", {"i", "benefit"}).add_row({0.0, 12.5});
  r.timer("run").record_ns(2'000'000);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"req/total\":42"), std::string::npos);
  EXPECT_NE(json.find("\"hit_ratio\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"boundaries\":[1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"cost\":[3.5]"), std::string::npos);
  EXPECT_NE(json.find("\"columns\":[\"i\",\"benefit\"]"), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
}

TEST(RegistryTest, WriteJsonFileRoundTrips) {
  Registry r;
  r.counter("c").add(7);
  const std::string path = ::testing::TempDir() + "obs_registry_test.json";
  write_json_file(r, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), r.to_json() + "\n");
  std::remove(path.c_str());
}

}  // namespace
