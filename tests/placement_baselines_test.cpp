// Unit tests for fixed-split, pure caching, random and popularity baselines.

#include <gtest/gtest.h>

#include "src/cdn/cost.h"
#include "src/placement/baselines.h"
#include "src/placement/fixed_split.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using cdn::placement::fixed_split;
using cdn::placement::greedy_global;
using cdn::placement::hybrid_greedy;
using cdn::placement::popularity_placement;
using cdn::placement::pure_caching;
using cdn::placement::random_placement;
using cdn::test::TestSystem;
using cdn::util::Rng;

TEST(PureCachingTest, NoReplicasFullCache) {
  const auto t = TestSystem::make();
  const auto result = pure_caching(*t.system);
  EXPECT_EQ(result.replicas_created, 0u);
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    const auto server = static_cast<cdn::sys::ServerIndex>(i);
    EXPECT_EQ(result.cache_bytes(server), t.system->server_storage(server));
  }
  // Every unreplicated site has a positive modelled hit ratio.
  for (double h : result.modeled_hit) {
    EXPECT_GT(h, 0.0);
    EXPECT_LE(h, 1.0);
  }
}

TEST(PureCachingTest, CostBelowNoCacheAtAll) {
  const auto t = TestSystem::make();
  const auto result = pure_caching(*t.system);
  // Without caches every request pays the primary distance.
  cdn::sys::ReplicaPlacement empty(t.system->server_storage(),
                                   t.system->site_bytes());
  cdn::sys::NearestReplicaIndex sn(t.system->distances(), empty);
  const double bare = cdn::sys::total_remote_cost(t.system->demand(), sn);
  EXPECT_LT(result.predicted_total_cost, bare);
}

TEST(FixedSplitTest, ZeroCacheFractionMatchesGreedyReplicaSet) {
  const auto t = TestSystem::make();
  const auto split = fixed_split(*t.system, 0.0);
  const auto greedy = greedy_global(*t.system);
  EXPECT_EQ(split.replicas_created, greedy.replicas_created);
  // But fixed-split still caches in the slack space.
  EXPECT_TRUE(split.caching_enabled);
}

TEST(FixedSplitTest, FullCacheFractionMatchesPureCaching) {
  const auto t = TestSystem::make();
  const auto split = fixed_split(*t.system, 1.0);
  EXPECT_EQ(split.replicas_created, 0u);
  const auto cache = pure_caching(*t.system);
  EXPECT_NEAR(split.predicted_total_cost, cache.predicted_total_cost,
              0.02 * cache.predicted_total_cost);
}

TEST(FixedSplitTest, CacheShareIsRespected) {
  const auto t = TestSystem::make();
  const double f = 0.5;
  const auto split = fixed_split(*t.system, f);
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    const auto server = static_cast<cdn::sys::ServerIndex>(i);
    // Replicas were limited to (1-f) of storage, so at least f remains.
    EXPECT_GE(split.cache_bytes(server),
              static_cast<std::uint64_t>(
                  f * static_cast<double>(t.system->server_storage(server))));
  }
}

TEST(FixedSplitTest, HybridBeatsAdHocSplits) {
  // Figure 5's claim at model level: the hybrid's predicted cost is at
  // least as good as any fixed split.
  const auto t = TestSystem::make();
  const auto hybrid = hybrid_greedy(*t.system);
  for (double f : {0.2, 0.4, 0.6, 0.8}) {
    const auto split = fixed_split(*t.system, f);
    EXPECT_LE(hybrid.predicted_total_cost,
              split.predicted_total_cost * 1.001)
        << "cache fraction " << f;
  }
}

TEST(FixedSplitTest, RejectsOutOfRangeFraction) {
  const auto t = TestSystem::make();
  EXPECT_THROW(fixed_split(*t.system, -0.1), cdn::PreconditionError);
  EXPECT_THROW(fixed_split(*t.system, 1.1), cdn::PreconditionError);
}

TEST(RandomPlacementTest, FillsStorageAndRespectsBudgets) {
  const auto t = TestSystem::make();
  Rng rng(5);
  const auto result = random_placement(*t.system, rng);
  EXPECT_GT(result.replicas_created, 0u);
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    const auto server = static_cast<cdn::sys::ServerIndex>(i);
    EXPECT_LE(result.placement.used_bytes(server),
              t.system->server_storage(server));
  }
}

TEST(RandomPlacementTest, GreedyBeatsRandom) {
  const auto t = TestSystem::make();
  Rng rng(6);
  const auto random = random_placement(*t.system, rng);
  const auto hybrid = hybrid_greedy(*t.system);
  EXPECT_LT(hybrid.predicted_total_cost, random.predicted_total_cost);
}

TEST(PopularityPlacementTest, ReplicatesHottestSites) {
  const auto t = TestSystem::make();
  const auto result = popularity_placement(*t.system);
  EXPECT_GT(result.replicas_created, 0u);
  // The single hottest site globally must be replicated at server 0.
  std::size_t hottest = 0;
  double best = -1.0;
  for (std::size_t j = 0; j < t.system->site_count(); ++j) {
    const double v =
        t.system->demand().site_total(static_cast<cdn::sys::SiteIndex>(j));
    if (v > best) {
      best = v;
      hottest = j;
    }
  }
  EXPECT_TRUE(result.placement.is_replicated(
      0, static_cast<cdn::sys::SiteIndex>(hottest)));
}

TEST(PopularityPlacementTest, HybridBeatsPopularity) {
  const auto t = TestSystem::make();
  const auto pop = popularity_placement(*t.system);
  const auto hybrid = hybrid_greedy(*t.system);
  EXPECT_LE(hybrid.predicted_total_cost, pop.predicted_total_cost * 1.001);
}

}  // namespace
