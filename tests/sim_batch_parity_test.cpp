// Byte-level parity of the data-oriented (batched) request loop: a live
// synthetic run must produce exactly the report of replaying the same
// stream through the trace path (which drives the per-request reference
// loop), across cache policies and staleness modes.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "src/cache/cache_factory.h"
#include "src/placement/fixed_split.h"
#include "src/placement/hybrid_greedy.h"
#include "src/sim/sim_checkpoint.h"
#include "src/sim/simulator.h"
#include "src/workload/request_stream.h"
#include "src/workload/trace_io.h"
#include "tests/test_support.h"

namespace {

using cdn::cache::PolicyKind;
using cdn::sim::report_digest;
using cdn::sim::simulate;
using cdn::sim::SimulationConfig;
using cdn::sim::StalenessMode;
using cdn::test::TestSystem;
using cdn::workload::RecordedTrace;
using cdn::workload::RequestStream;

constexpr std::uint64_t kRequests = 120'000;
constexpr std::uint64_t kSeed = 23;

SimulationConfig base_config() {
  SimulationConfig cfg;
  cfg.total_requests = kRequests;
  cfg.warmup_fraction = 0.3;
  cfg.seed = kSeed;
  return cfg;
}

class BatchParityTest
    : public ::testing::TestWithParam<std::tuple<PolicyKind, StalenessMode>> {
};

TEST_P(BatchParityTest, LiveRunMatchesTraceReplayExactly) {
  const auto [policy, staleness] = GetParam();
  auto t = TestSystem::make();
  // A nonzero lambda exercises the flagged-request branches of the batched
  // loop; kUncacheable additionally covers the admission bypass.
  t.catalog->set_uncacheable_fraction(0.2);
  const auto placement = cdn::placement::hybrid_greedy(*t.system);

  auto live_cfg = base_config();
  live_cfg.policy = policy;
  live_cfg.staleness = staleness;
  const auto live = simulate(*t.system, placement, live_cfg);

  // The trace path forces the sequential per-request reference loop; a
  // trace recorded from the same stream seed replays the exact sequence the
  // live run generated.
  RequestStream stream(*t.catalog, *t.demand, kSeed);
  const auto trace = RecordedTrace::record(stream, kRequests);
  auto replay_cfg = live_cfg;
  replay_cfg.trace = &trace;
  const auto replay = simulate(*t.system, placement, replay_cfg);
  t.catalog->set_uncacheable_fraction(0.0);

  EXPECT_EQ(report_digest(live), report_digest(replay));
  EXPECT_EQ(live.measured_requests, replay.measured_requests);
  EXPECT_DOUBLE_EQ(live.mean_latency_ms, replay.mean_latency_ms);
  EXPECT_DOUBLE_EQ(live.mean_cost_hops, replay.mean_cost_hops);
  EXPECT_DOUBLE_EQ(live.cache_hit_ratio, replay.cache_hit_ratio);
  EXPECT_EQ(live.cache_totals.hits(), replay.cache_totals.hits());
  EXPECT_EQ(live.cache_totals.evictions(), replay.cache_totals.evictions());
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndStaleness, BatchParityTest,
    ::testing::Combine(::testing::Values(PolicyKind::kLru, PolicyKind::kFifo,
                                         PolicyKind::kClock),
                       ::testing::Values(StalenessMode::kRefresh,
                                         StalenessMode::kUncacheable)),
    [](const auto& suite_info) {
      std::string name =
          cdn::cache::policy_name(std::get<0>(suite_info.param));
      name += std::get<1>(suite_info.param) == StalenessMode::kRefresh
                  ? "Refresh"
                  : "Uncacheable";
      return name;
    });

}  // namespace
