// Unit tests for the LRU cache — including hand-computed eviction traces
// that pin down the exact semantics the analytical model assumes.

#include <gtest/gtest.h>

#include "src/cache/lru_cache.h"
#include "src/util/error.h"

namespace {

using cdn::cache::LruCache;

TEST(LruCacheTest, MissThenHit) {
  LruCache cache(100);
  EXPECT_FALSE(cache.lookup(1));
  cache.admit(1, 10);
  EXPECT_TRUE(cache.lookup(1));
  EXPECT_EQ(cache.used_bytes(), 10u);
  EXPECT_EQ(cache.object_count(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(30);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.admit(3, 10);
  cache.admit(4, 10);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LruCacheTest, LookupRefreshesRecency) {
  LruCache cache(30);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.admit(3, 10);
  EXPECT_TRUE(cache.lookup(1));  // 1 becomes MRU; 2 is now LRU
  cache.admit(4, 10);            // evicts 2, not 1
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCacheTest, ContainsDoesNotRefreshRecency) {
  LruCache cache(20);
  cache.admit(1, 10);
  cache.admit(2, 10);
  EXPECT_TRUE(cache.contains(1));  // must NOT touch recency
  cache.admit(3, 10);              // evicts 1 (still LRU)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(LruCacheTest, VariableSizesEvictUntilFit) {
  LruCache cache(100);
  cache.admit(1, 40);
  cache.admit(2, 40);
  cache.admit(3, 60);  // needs 60: evicting LRU object 1 suffices (40+60)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.used_bytes(), 100u);
  cache.admit(4, 90);  // must evict BOTH 2 and 3
  EXPECT_FALSE(cache.contains(2));
  EXPECT_FALSE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.used_bytes(), 90u);
}

TEST(LruCacheTest, OversizedObjectNeverAdmitted) {
  LruCache cache(50);
  cache.admit(1, 20);
  cache.admit(2, 51);  // larger than capacity: ignored
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));  // and nothing was evicted for it
  EXPECT_EQ(cache.used_bytes(), 20u);
}

TEST(LruCacheTest, ReAdmitIsNoop) {
  LruCache cache(50);
  cache.admit(1, 20);
  cache.admit(1, 20);
  EXPECT_EQ(cache.object_count(), 1u);
  EXPECT_EQ(cache.used_bytes(), 20u);
}

TEST(LruCacheTest, EraseFreesBytes) {
  LruCache cache(50);
  cache.admit(1, 20);
  cache.admit(2, 20);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(cache.used_bytes(), 20u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruCacheTest, ShrinkCapacityEvicts) {
  LruCache cache(100);
  cache.admit(1, 30);
  cache.admit(2, 30);
  cache.admit(3, 30);
  cache.set_capacity(50);  // must evict 1 and 2 (LRU first)
  EXPECT_EQ(cache.capacity_bytes(), 50u);
  EXPECT_LE(cache.used_bytes(), 50u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LruCacheTest, GrowCapacityKeepsContents) {
  LruCache cache(30);
  cache.admit(1, 30);
  cache.set_capacity(100);
  EXPECT_TRUE(cache.contains(1));
  cache.admit(2, 70);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(LruCacheTest, ClearResetsEverything) {
  LruCache cache(100);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.clear();
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.object_count(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruCacheTest, LruAndMruKeysTrackOrder) {
  LruCache cache(100);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.admit(3, 10);
  EXPECT_EQ(cache.mru_key(), 3u);
  EXPECT_EQ(cache.lru_key(), 1u);
  cache.lookup(1);
  EXPECT_EQ(cache.mru_key(), 1u);
  EXPECT_EQ(cache.lru_key(), 2u);
}

TEST(LruCacheTest, LruKeyOfEmptyThrows) {
  LruCache cache(10);
  EXPECT_THROW(cache.lru_key(), cdn::PreconditionError);
  EXPECT_THROW(cache.mru_key(), cdn::PreconditionError);
}

TEST(LruCacheTest, AccessRecordsStats) {
  LruCache cache(100);
  EXPECT_FALSE(cache.access(1, 10));  // miss + admit
  EXPECT_TRUE(cache.access(1, 10));   // hit
  EXPECT_TRUE(cache.access(1, 10));
  EXPECT_EQ(cache.stats().hits(), 2u);
  EXPECT_EQ(cache.stats().misses(), 1u);
  EXPECT_NEAR(cache.stats().hit_ratio(), 2.0 / 3.0, 1e-12);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses(), 0u);
}

TEST(LruCacheTest, EvictionCounterAdvances) {
  LruCache cache(20);
  cache.access(1, 10);
  cache.access(2, 10);
  cache.access(3, 10);  // evicts 1
  EXPECT_EQ(cache.stats().evictions(), 1u);
}

TEST(LruCacheTest, PaperBufferTrace) {
  // Figure 1 semantics with B = 3 unit-size slots: an object never
  // re-requested is evicted after exactly 3 *distinct-object insertions*
  // push it out the front.
  LruCache cache(3);
  cache.admit(10, 1);  // position 1 (most recent)
  cache.admit(11, 1);  // 10 -> position 2
  cache.admit(12, 1);  // 10 -> position 3 (front)
  EXPECT_TRUE(cache.contains(10));
  cache.admit(13, 1);  // 10 falls off
  EXPECT_FALSE(cache.contains(10));
}

TEST(LruCacheTest, ZeroCapacityAdmitsNothing) {
  LruCache cache(0);
  cache.admit(1, 1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

}  // namespace
