// Placement model tiers (--placement-model): accuracy of the tiered
// candidate pricing against the exact Eq. 1/Eq. 2 model, the warm-started
// Che solve, the 1% final-cost gate of the error-gated fallback, tier
// counters, validation, and the CLI parsing helpers.
//
// The contract under test (docs/PERFORMANCE.md, "Placement model tiers"):
// tiers price the candidate *ranking* only — the hit matrix, miss flows,
// cost trajectory and final states stay exact — and the margin fallback
// keeps the final hybrid cost within 1% of the exact engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/model/steady_state.h"
#include "src/obs/registry.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/placement/hybrid_internal.h"
#include "src/placement/local_search.h"
#include "src/placement/model_support.h"
#include "src/placement/tier_evaluator.h"
#include "src/util/error.h"
#include "src/util/zipf.h"
#include "tests/test_support.h"

namespace {

using cdn::model::che_characteristic_time;
using cdn::model::che_characteristic_time_warm;
using cdn::model::CheSolveResult;
using cdn::model::OccupancyCurve;
using cdn::placement::hybrid_greedy;
using cdn::placement::HybridGreedyOptions;
using cdn::placement::ModelContext;
using cdn::placement::modeled_hit_matrix;
using cdn::placement::parse_placement_model;
using cdn::placement::PlacementEngine;
using cdn::placement::PlacementModel;
using cdn::placement::placement_model_name;
using cdn::placement::RelativeColumns;
using cdn::placement::TierEvaluator;
using cdn::test::TestSystem;
using cdn::PreconditionError;
using cdn::util::ZipfDistribution;

// ---------------------------------------------------------------------------
// Warm-started Che characteristic time (model layer).

/// Synthetic renormalised site weights: a truncated geometric mix with one
/// site carrying `head` of the mass (head -> 1 exercises the p -> 1 edge).
std::vector<double> make_weights(std::size_t sites, double head) {
  std::vector<double> w(sites, 0.0);
  w[0] = head;
  double rest = 1.0 - head;
  for (std::size_t j = 1; j < sites; ++j) {
    w[j] = rest / static_cast<double>(sites - 1);
  }
  return w;
}

TEST(CheWarmStartTest, AgreesWithColdSolveAcrossThetaAndBuffers) {
  for (const double theta : {0.6, 0.8, 1.0, 1.2}) {
    SCOPED_TRACE("theta " + std::to_string(theta));
    const ZipfDistribution zipf(200, theta);
    const OccupancyCurve occupancy(zipf, 1024);
    const auto weights = make_weights(8, 0.4);
    for (const std::uint64_t slots :
         {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{10},
          std::uint64_t{100}, std::uint64_t{750}}) {
      SCOPED_TRACE("slots " + std::to_string(slots));
      const double cold = che_characteristic_time(weights, occupancy, slots);
      // Warm starts bracketing the solution from below, above, and exactly.
      for (const double factor : {0.5, 1.0, 2.0}) {
        const CheSolveResult warm = che_characteristic_time_warm(
            weights, occupancy, slots, factor * cold);
        if (cold > 0.0) {
          EXPECT_NEAR(warm.k, cold, 1e-6 * cold)
              << "warm factor " << factor;
        } else {
          EXPECT_DOUBLE_EQ(warm.k, cold);
        }
      }
      // No warm start degrades to the cold bracket, same answer.
      const CheSolveResult none =
          che_characteristic_time_warm(weights, occupancy, slots, 0.0);
      if (cold > 0.0) {
        EXPECT_NEAR(none.k, cold, 1e-6 * cold);
      } else {
        EXPECT_DOUBLE_EQ(none.k, cold);
      }
    }
  }
}

TEST(CheWarmStartTest, EdgeCasesMirrorColdSolve) {
  const ZipfDistribution zipf(100, 0.8);
  const OccupancyCurve occupancy(zipf, 512);
  const auto weights = make_weights(6, 0.5);
  // B = 0: no cache, K = 0, no iterations wasted.
  const CheSolveResult empty =
      che_characteristic_time_warm(weights, occupancy, 0, 123.0);
  EXPECT_DOUBLE_EQ(empty.k, 0.0);
  EXPECT_EQ(empty.iterations, 0u);
  // No cacheable weight: K = 0.
  const std::vector<double> zeros(6, 0.0);
  EXPECT_DOUBLE_EQ(
      che_characteristic_time_warm(zeros, occupancy, 50, 10.0).k, 0.0);
  // Cache fits the whole cacheable set: saturated regime, same as cold.
  const double cold_fit = che_characteristic_time(weights, occupancy, 100'000);
  EXPECT_DOUBLE_EQ(
      che_characteristic_time_warm(weights, occupancy, 100'000, 5.0).k,
      cold_fit);
}

TEST(CheWarmStartTest, GoodWarmStartIteratesLessThanCold) {
  const ZipfDistribution zipf(300, 1.0);
  const OccupancyCurve occupancy(zipf, 1024);
  const auto weights = make_weights(10, 0.3);
  const std::uint64_t slots = 500;
  const CheSolveResult cold =
      che_characteristic_time_warm(weights, occupancy, slots, 0.0);
  // Re-solve a nearby fixed point (one replica's worth of slots removed)
  // warm-started from the previous answer — the intended placement usage.
  const CheSolveResult warm =
      che_characteristic_time_warm(weights, occupancy, slots - 30, cold.k);
  EXPECT_GT(cold.iterations, 0u);
  EXPECT_GT(warm.iterations, 0u);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(CheWarmStartTest, FixedPointPropertyAcrossBufferSweep) {
  // The returned K must actually satisfy sum_j N(K * w_j) ~= target,
  // including the p -> 1 edge where one site dominates the mass.
  for (const double theta : {0.6, 1.2}) {
    const ZipfDistribution zipf(150, theta);
    const OccupancyCurve occupancy(zipf, 1024);
    for (const double head : {0.4, 0.999}) {
      SCOPED_TRACE("theta " + std::to_string(theta) + " head " +
                   std::to_string(head));
      const auto weights = make_weights(5, head);
      double prev_k = 0.0;
      for (const std::uint64_t slots :
           {std::uint64_t{1}, std::uint64_t{20}, std::uint64_t{200},
            std::uint64_t{600}}) {
        const CheSolveResult r =
            che_characteristic_time_warm(weights, occupancy, slots, prev_k);
        const double target = static_cast<double>(
            std::min<std::uint64_t>(slots, 5 * 150));
        double occupied = 0.0;
        for (const double w : weights) {
          occupied += occupancy.evaluate(w, r.k);
        }
        EXPECT_NEAR(occupied, target, 1e-3 * target + 1e-6);
        EXPECT_GT(r.k, prev_k);  // fewer slots -> smaller K, sweep ascends
        prev_k = r.k;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TierEvaluator pricing accuracy against the exact penalty.

struct TierFixture {
  TestSystem t;
  ModelContext context;
  std::vector<cdn::model::ServerCacheState> states;
  cdn::sys::ReplicaPlacement placement;
  cdn::sys::NearestReplicaIndex nearest;
  std::vector<double> hit;

  explicit TierFixture(PlacementModel tier, TestSystem sys)
      : t(std::move(sys)),
        context(*t.system, cdn::model::PbMode::kAtInit, tier),
        states(context.make_states()),
        placement(t.system->server_storage(), t.system->site_bytes()),
        nearest(t.system->distances(), placement),
        hit(modeled_hit_matrix(states)) {}

  TierEvaluator make_evaluator() const {
    return TierEvaluator(*t.system, states, nearest, context.curve(),
                         context.occupancy(), context.placement_model());
  }
};

/// Max |exact - tier| over all feasible candidates, as a fraction of the
/// largest |exact| penalty (the natural scale of the ranking decision).
void expect_penalty_accuracy(PlacementModel tier, double rel_tol) {
  const TierFixture f(tier, TestSystem::make(5, 8, 3, 120, 0.12, 4.0, 17));
  const TierEvaluator evaluator = f.make_evaluator();
  const std::size_t n = f.t.system->server_count();
  const std::size_t m = f.t.system->site_count();
  double scale = 0.0;
  std::vector<double> exact(n * m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto site = static_cast<std::uint32_t>(j);
      if (!f.states[i].can_fit(site) || f.states[i].is_replicated(site)) {
        continue;
      }
      exact[i * m + j] = cdn::placement::detail::hybrid_cache_penalty(
          *f.t.system, f.nearest, f.states[i], f.hit,
          static_cast<cdn::sys::ServerIndex>(i),
          static_cast<cdn::sys::SiteIndex>(j), nullptr);
      scale = std::max(scale, std::abs(exact[i * m + j]));
    }
  }
  ASSERT_GT(scale, 0.0) << "vacuous fixture: every exact penalty is zero";
  std::size_t compared = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto site = static_cast<std::uint32_t>(j);
      if (!f.states[i].can_fit(site) || f.states[i].is_replicated(site)) {
        continue;
      }
      const double priced = evaluator.penalty(
          static_cast<cdn::sys::ServerIndex>(i),
          static_cast<cdn::sys::SiteIndex>(j));
      EXPECT_NEAR(priced, exact[i * m + j], rel_tol * scale)
          << "candidate (" << i << ", " << j << ")";
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
  EXPECT_EQ(evaluator.evaluations(), compared);
}

TEST(TierEvaluatorTest, ClosedFormPenaltyTracksExact) {
  // The penalty is a difference of two nearly-equal expectations, so the
  // closed-form-vs-empirical model gap (a few percent per term) amplifies;
  // measured worst case is ~6.5% of the benefit scale and is grid-size
  // independent (it is model error, not tabulation error).  The engines'
  // exact-verify fallback owns the final accuracy (1% cost gate below).
  expect_penalty_accuracy(PlacementModel::kClosedForm, 0.10);
}

TEST(TierEvaluatorTest, ChePenaltyTracksExact) {
  // The Che fixed point is a different approximation of K', not a
  // tabulation of the exact solve — the band is wider by design and the
  // engines' margin fallback owns the final accuracy (1% cost gate below).
  expect_penalty_accuracy(PlacementModel::kChe, 0.25);
}

TEST(TierEvaluatorTest, CheIterationCounterAdvances) {
  const TierFixture f(PlacementModel::kChe,
                      TestSystem::make(4, 6, 2, 100, 0.15, 6.0, 11));
  const TierEvaluator evaluator = f.make_evaluator();
  evaluator.penalty(0, 0);
  EXPECT_GT(evaluator.che_iterations(), 0u);
}

TEST(TierEvaluatorTest, CheRejectsZeroSlotServer) {
  // Storage so small that no server has a single LRU slot: the Che tier has
  // no occupancy fixed point to anchor and must refuse loudly.
  const auto t = TestSystem::make(4, 6, 2, 100, 1e-7);
  const ModelContext context(*t.system, cdn::model::PbMode::kAtInit,
                             PlacementModel::kChe);
  const auto states = context.make_states();
  ASSERT_EQ(states.front().buffer_slots(), 0u)
      << "fixture regression: expected a zero-slot cache";
  const cdn::sys::ReplicaPlacement placement(t.system->server_storage(),
                                             t.system->site_bytes());
  const cdn::sys::NearestReplicaIndex nearest(t.system->distances(),
                                              placement);
  EXPECT_THROW(TierEvaluator(*t.system, states, nearest, context.curve(),
                             context.occupancy(), PlacementModel::kChe),
               PreconditionError);
  // End-to-end: the hybrid run surfaces the same rejection.
  HybridGreedyOptions options;
  options.placement_model = PlacementModel::kChe;
  EXPECT_THROW(hybrid_greedy(*t.system, options), PreconditionError);
}

TEST(TierEvaluatorTest, RelativeColumnsMatchExactGain) {
  const TierFixture f(PlacementModel::kClosedForm,
                      TestSystem::make(5, 7, 2, 110, 0.1, 5.0, 23));
  const std::vector<double> flow = cdn::placement::miss_flow_matrix(
      *f.t.system, f.hit);
  RelativeColumns columns;
  columns.build(*f.t.system, f.placement, f.nearest, flow);
  const std::size_t n = f.t.system->server_count();
  const std::size_t m = f.t.system->site_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto server = static_cast<cdn::sys::ServerIndex>(i);
      const auto site = static_cast<cdn::sys::SiteIndex>(j);
      const double exact = cdn::placement::detail::hybrid_relative_gain(
          *f.t.system, f.placement, f.nearest, f.hit, flow.data(), server,
          site);
      // Same ascending-k accumulation order: bitwise identity, not NEAR.
      EXPECT_EQ(columns.relative_gain(server, site), exact)
          << "candidate (" << i << ", " << j << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the error-gated fallback keeps the final cost within 1%.

TEST(PlacementTierGateTest, TieredFinalCostWithinOnePercentOfExact) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto t = TestSystem::make(
        3 + seed % 6, 4 + seed % 5, 1 + seed % 3, 100,
        0.05 + 0.03 * static_cast<double>(seed % 7),
        2.0 + static_cast<double>(seed % 9), seed);
    HybridGreedyOptions exact_options;
    exact_options.engine = PlacementEngine::kReference;
    const auto exact = hybrid_greedy(*t.system, exact_options);
    ASSERT_GT(exact.predicted_total_cost, 0.0);
    for (const PlacementModel tier :
         {PlacementModel::kClosedForm, PlacementModel::kChe}) {
      for (const PlacementEngine engine :
           {PlacementEngine::kReference, PlacementEngine::kIncremental}) {
        SCOPED_TRACE(std::string(placement_model_name(tier)) +
                     (engine == PlacementEngine::kReference ? "/reference"
                                                            : "/incremental"));
        HybridGreedyOptions options;
        options.placement_model = tier;
        options.engine = engine;
        const auto tiered = hybrid_greedy(*t.system, options);
        EXPECT_LE(std::abs(tiered.predicted_total_cost -
                           exact.predicted_total_cost),
                  0.01 * exact.predicted_total_cost);
      }
    }
  }
}

TEST(PlacementTierGateTest, TierCountersExportedOnlyWhenTiered) {
  const auto t = TestSystem::make();
  for (const PlacementEngine engine :
       {PlacementEngine::kReference, PlacementEngine::kIncremental}) {
    cdn::obs::Registry exact_registry;
    HybridGreedyOptions exact_options;
    exact_options.engine = engine;
    exact_options.metrics = &exact_registry;
    hybrid_greedy(*t.system, exact_options);
    EXPECT_EQ(exact_registry.find_counter("placement/hybrid/tier_evaluations"),
              nullptr);

    cdn::obs::Registry che_registry;
    HybridGreedyOptions che_options;
    che_options.engine = engine;
    che_options.placement_model = PlacementModel::kChe;
    che_options.metrics = &che_registry;
    hybrid_greedy(*t.system, che_options);
    const auto* evals =
        che_registry.find_counter("placement/hybrid/tier_evaluations");
    ASSERT_NE(evals, nullptr);
    EXPECT_GT(evals->value(), 0u);
    EXPECT_NE(che_registry.find_counter("placement/hybrid/tier_fallbacks"),
              nullptr);
    EXPECT_NE(che_registry.find_counter("placement/hybrid/tier_margin_hits"),
              nullptr);
    EXPECT_NE(che_registry.find_counter("model/che/fixed_point_iterations"),
              nullptr);
  }
}

TEST(PlacementTierGateTest, ZeroMarginStillVerifiesTheStopDecision) {
  // tier_fallback_margin = 0 trusts the tier everywhere except the commit
  // threshold; the run must still terminate and stay within the gate.
  const auto t = TestSystem::make();
  HybridGreedyOptions exact_options;
  const auto exact = hybrid_greedy(*t.system, exact_options);
  HybridGreedyOptions options;
  options.placement_model = PlacementModel::kClosedForm;
  options.tier_fallback_margin = 0.0;
  const auto tiered = hybrid_greedy(*t.system, options);
  EXPECT_LE(
      std::abs(tiered.predicted_total_cost - exact.predicted_total_cost),
      0.01 * exact.predicted_total_cost);
}

TEST(PlacementTierGateTest, ExactTierIsByteIdenticalToDefaultRun) {
  // --placement-model=exact must leave today's engines untouched: identical
  // placement, trajectory and predictions, and tier_fallback_margin ignored.
  const auto t = TestSystem::make();
  for (const PlacementEngine engine :
       {PlacementEngine::kReference, PlacementEngine::kIncremental}) {
    HybridGreedyOptions baseline;
    baseline.engine = engine;
    const auto a = hybrid_greedy(*t.system, baseline);
    HybridGreedyOptions explicit_exact = baseline;
    explicit_exact.placement_model = PlacementModel::kExact;
    explicit_exact.tier_fallback_margin = 0.7;
    const auto b = hybrid_greedy(*t.system, explicit_exact);
    EXPECT_EQ(a.predicted_total_cost, b.predicted_total_cost);
    EXPECT_EQ(a.replicas_created, b.replicas_created);
    ASSERT_EQ(a.cost_trajectory.size(), b.cost_trajectory.size());
    for (std::size_t k = 0; k < a.cost_trajectory.size(); ++k) {
      EXPECT_EQ(a.cost_trajectory[k], b.cost_trajectory[k]);
    }
  }
}

TEST(PlacementTierGateTest, ModelFreeAlgorithmsIgnoreTheTier) {
  // greedy_global and local_search accept the knob for CLI symmetry but
  // their objectives are model-free: every tier must be bit-identical.
  const auto t = TestSystem::make();
  cdn::placement::GreedyGlobalOptions exact_gg;
  const auto gg_exact = cdn::placement::greedy_global(*t.system, exact_gg);
  for (const PlacementModel tier :
       {PlacementModel::kClosedForm, PlacementModel::kChe}) {
    cdn::placement::GreedyGlobalOptions options;
    options.placement_model = tier;
    const auto gg = cdn::placement::greedy_global(*t.system, options);
    EXPECT_EQ(gg.predicted_total_cost, gg_exact.predicted_total_cost);
    EXPECT_EQ(gg.replicas_created, gg_exact.replicas_created);

    auto refined_exact = gg_exact;
    cdn::placement::LocalSearchOptions ls_exact;
    const auto stats_exact = cdn::placement::local_search_refine(
        *t.system, refined_exact, ls_exact);
    auto refined = gg_exact;
    cdn::placement::LocalSearchOptions ls;
    ls.placement_model = tier;
    const auto stats = cdn::placement::local_search_refine(*t.system,
                                                           refined, ls);
    EXPECT_EQ(stats.swaps_applied, stats_exact.swaps_applied);
    EXPECT_EQ(stats.final_cost, stats_exact.final_cost);
  }
}

// ---------------------------------------------------------------------------
// CLI parsing + coherence note.

TEST(PlacementModelParseTest, RoundTripsEveryTier) {
  for (const PlacementModel tier :
       {PlacementModel::kExact, PlacementModel::kClosedForm,
        PlacementModel::kChe}) {
    EXPECT_EQ(parse_placement_model(placement_model_name(tier)), tier);
  }
  EXPECT_EQ(parse_placement_model("exact"), PlacementModel::kExact);
  EXPECT_EQ(parse_placement_model("closed-form"), PlacementModel::kClosedForm);
  EXPECT_EQ(parse_placement_model("che"), PlacementModel::kChe);
}

TEST(PlacementModelParseTest, RejectsUnknownNames) {
  EXPECT_THROW(parse_placement_model(""), PreconditionError);
  EXPECT_THROW(parse_placement_model("closedform"), PreconditionError);
  EXPECT_THROW(parse_placement_model("Che"), PreconditionError);
  EXPECT_THROW(parse_placement_model("empirical"), PreconditionError);
}

TEST(PlacementModelParseTest, MismatchNoteFlagsIncoherentPairs) {
  using cdn::core::model_tier_mismatch_note;
  // Coherent pairs are silent.
  EXPECT_EQ(model_tier_mismatch_note("empirical", "exact"), "");
  EXPECT_EQ(model_tier_mismatch_note("closed-form", "closed-form"), "");
  EXPECT_EQ(model_tier_mismatch_note("che", "che"), "");
  // Every incoherent pair produces a note naming both flags.
  for (const std::string hit : {"empirical", "closed-form", "che"}) {
    for (const std::string placement : {"exact", "closed-form", "che"}) {
      const std::string note = model_tier_mismatch_note(hit, placement);
      const bool coherent =
          (hit == "empirical" && placement == "exact") ||
          (hit == placement);
      if (coherent) {
        EXPECT_EQ(note, "") << hit << " / " << placement;
      } else {
        EXPECT_NE(note.find("--hit-model=" + hit), std::string::npos);
        EXPECT_NE(note.find("--placement-model=" + placement),
                  std::string::npos);
      }
    }
  }
}

}  // namespace
