// Unit tests for streaming statistics and quantile helpers.

#include <gtest/gtest.h>

#include "src/util/error.h"

#include <vector>

#include "src/util/stats.h"

namespace {

using cdn::util::mean_relative_error;
using cdn::util::quantile_sorted;
using cdn::util::quantiles;
using cdn::util::RunningStats;

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats whole, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 20.0;
    whole.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: unchanged
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: becomes rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, MergeWithEmptyDoesNotAbsorbZeroSentinel) {
  // An empty accumulator reports min() = max() = 0.0 as a placeholder;
  // merging must not let that 0.0 clamp a negative-only or positive-only
  // sample range.
  RunningStats negatives, empty;
  negatives.add(-5.0);
  negatives.add(-1.0);
  negatives.merge(empty);
  EXPECT_DOUBLE_EQ(negatives.min(), -5.0);
  EXPECT_DOUBLE_EQ(negatives.max(), -1.0);  // 0.0 would betray the sentinel

  RunningStats positives;
  positives.add(2.0);
  empty.merge(positives);  // empty lhs
  EXPECT_DOUBLE_EQ(empty.min(), 2.0);
  EXPECT_DOUBLE_EQ(empty.max(), 2.0);
}

TEST(RunningStatsTest, MergeBothEmptyStaysEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  // Still behaves like a fresh accumulator afterwards.
  a.add(-3.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), -3.0);
}

TEST(QuantileTest, MedianOfOddSample) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.75), 7.5);
}

TEST(QuantileTest, ExtremesAreMinAndMax) {
  const std::vector<double> v{3.0, 7.0, 11.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 11.0);
}

TEST(QuantileTest, RejectsBadInput) {
  const std::vector<double> empty;
  const std::vector<double> v{1.0};
  EXPECT_THROW(quantile_sorted(empty, 0.5), cdn::PreconditionError);
  EXPECT_THROW(quantile_sorted(v, -0.1), cdn::PreconditionError);
  EXPECT_THROW(quantile_sorted(v, 1.1), cdn::PreconditionError);
}

TEST(QuantileTest, QuantilesSortsInput) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  const std::vector<double> qs{0.0, 0.5, 1.0};
  const auto out = quantiles(v, qs);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], 5.0);
}

TEST(MeanRelativeErrorTest, ZeroForIdenticalSeries) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_relative_error(a, a), 0.0);
}

TEST(MeanRelativeErrorTest, KnownValue) {
  const std::vector<double> ref{2.0, 4.0};
  const std::vector<double> est{1.0, 5.0};  // 50% and 25% errors
  EXPECT_DOUBLE_EQ(mean_relative_error(ref, est), 0.375);
}

TEST(MeanRelativeErrorTest, IgnoresZeroReference) {
  const std::vector<double> ref{0.0, 4.0};
  const std::vector<double> est{7.0, 5.0};
  EXPECT_DOUBLE_EQ(mean_relative_error(ref, est), 0.25);
}

TEST(MeanRelativeErrorTest, RejectsLengthMismatch) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(mean_relative_error(a, b), cdn::PreconditionError);
}

}  // namespace
