// Live-reconfiguration suite for the redirector daemon: the control
// socket (RELOAD/STATUS/DRAIN), SIGHUP-path reloads, generation-counted
// state swaps under load, EWMA outlier ejection shifting real race
// outcomes, and the slow-reader disconnect.  Mirrors the discipline of
// redirectd_integration_test.cpp: every read has a timeout and
// daemon.stats()/latency_ewma() are only touched after the loop thread
// has been joined.

#include "src/redirectd/control.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mock_replica.h"
#include "src/placement/fixed_split.h"
#include "src/placement/placement_io.h"
#include "src/redirectd/daemon.h"
#include "test_support.h"

namespace cdn::redirectd {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// parse_control_command: the grammar wall.

TEST(ControlCommand, ParsesTheThreeVerbs) {
  const ControlCommand status = parse_control_command("STATUS\n");
  EXPECT_EQ(status.verb, ControlCommand::Verb::kStatus);

  const ControlCommand drain = parse_control_command("DRAIN\r\n");
  EXPECT_EQ(drain.verb, ControlCommand::Verb::kDrain);

  const ControlCommand rp =
      parse_control_command("RELOAD placement /tmp/plan.txt\n");
  EXPECT_EQ(rp.verb, ControlCommand::Verb::kReload);
  EXPECT_EQ(rp.reload_kind, ReloadKind::kPlacement);
  EXPECT_EQ(rp.path, "/tmp/plan.txt");

  const ControlCommand re =
      parse_control_command("RELOAD endpoints eps.txt");  // '\n' optional
  EXPECT_EQ(re.reload_kind, ReloadKind::kEndpoints);
  EXPECT_EQ(re.path, "eps.txt");
}

TEST(ControlCommand, RejectsMalformedLines) {
  EXPECT_THROW(parse_control_command(""), PreconditionError);
  EXPECT_THROW(parse_control_command("\n"), PreconditionError);
  EXPECT_THROW(parse_control_command("RELOADX placement /p\n"),
               PreconditionError);
  EXPECT_THROW(parse_control_command("RELOAD placement\n"),
               PreconditionError);
  EXPECT_THROW(parse_control_command("RELOAD everything /p\n"),
               PreconditionError);
  EXPECT_THROW(parse_control_command("RELOAD placement /p extra\n"),
               PreconditionError);
  EXPECT_THROW(parse_control_command("STATUS please\n"), PreconditionError);
  EXPECT_THROW(parse_control_command("DRAIN now\n"), PreconditionError);
  EXPECT_THROW(
      parse_control_command(std::string(kMaxControlLine + 1, 'a')),
      PreconditionError);
}

// ---------------------------------------------------------------------------
// Shared fixture (same topology as redirectd_integration_test.cpp): from
// server 0, site 0's candidate ranking is [server 1 (cost 1), server 2
// (cost 2), origin (cost 6)].

struct Fixture {
  test::TestSystem t;
  placement::PlacementResult placement;

  Fixture()
      : t(test::TestSystem::make(4, 6, 2, 100, 0.9)),
        placement(placement::pure_caching(*t.system)) {
    placement.placement.add(1, 0);
    placement.placement.add(2, 0);
    placement.nearest.rebuild(placement.placement);
  }
};

class DaemonRunner {
 public:
  explicit DaemonRunner(RedirectorDaemon& daemon) : daemon_(daemon) {
    daemon_.start();
    thread_ = std::thread([this] { daemon_.run(); });
  }
  ~DaemonRunner() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      daemon_.request_stop();
      thread_.join();
    }
  }

 private:
  RedirectorDaemon& daemon_;
  std::thread thread_;
};

net::Fd connect_client(std::uint16_t port) {
  net::ConnectStart conn = net::start_connect("127.0.0.1", port);
  EXPECT_TRUE(conn.fd.valid());
  return std::move(conn.fd);
}

std::optional<RedirectAnswer> rpc(int fd, std::uint32_t server,
                                  std::uint32_t site, std::uint64_t object,
                                  int timeout_ms = 5000) {
  const std::string req = format_request({server, site, object});
  if (!net::write_all(fd, req.data(), req.size(), timeout_ms)) {
    return std::nullopt;
  }
  const auto line = net::read_line(fd, timeout_ms);
  if (!line.has_value()) return std::nullopt;
  return parse_answer(*line);
}

/// One control-line exchange with a hard timeout.
std::optional<std::string> control_rpc(int fd, const std::string& command,
                                       int timeout_ms = 5000) {
  const std::string line = command + "\n";
  if (!net::write_all(fd, line.data(), line.size(), timeout_ms)) {
    return std::nullopt;
  }
  auto reply = net::read_line(fd, timeout_ms);
  if (reply.has_value()) {
    while (!reply->empty() &&
           (reply->back() == '\n' || reply->back() == '\r')) {
      reply->pop_back();
    }
  }
  return reply;
}

DaemonConfig base_config(Fixture& fx) {
  DaemonConfig config;
  config.system = fx.t.system.get();
  config.placement = &fx.placement;
  config.top_k = 3;
  config.control = true;  // ephemeral control port
  // Keep the prober's up/down masks out of the way; EWMA tests re-tune.
  config.health.down_after = 1000;
  return config;
}

std::filesystem::path temp_path(const char* tag) {
  return std::filesystem::temp_directory_path() /
         ("hybridcdn_ctl_" + std::string(tag) + "_" +
          std::to_string(::getpid()) + ".txt");
}

void write_file(const std::filesystem::path& path,
                const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// Extracts `key=<value>` from a STATUS reply.
std::string status_field(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto end = line.find(' ', pos + needle.size());
  return line.substr(pos + needle.size(),
                     end == std::string::npos ? std::string::npos
                                              : end - (pos + needle.size()));
}

// ---------------------------------------------------------------------------
// STATUS / RELOAD / DRAIN against a live daemon.

TEST(ControlServer, StatusReportsGenerationAndDigests) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);
  ASSERT_NE(daemon.control_port(), 0);

  net::Fd ctl = connect_client(daemon.control_port());
  const auto reply = control_rpc(ctl.get(), "STATUS");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("OK ", 0), 0u) << *reply;
  EXPECT_EQ(status_field(*reply, "generation"), "1");
  EXPECT_EQ(status_field(*reply, "placement_digest"),
            hex16(placement::placement_digest(fx.placement.placement)));
  EXPECT_EQ(status_field(*reply, "draining"), "0");
}

TEST(ControlServer, ReloadPlacementSwapsTheServingGeneration) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  const auto before = rpc(client.get(), 0, 0, 1);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->server, 1u);  // generation 1: replica at server 1

  // New plan: site 0's only replica moves to server 3 (cost 3 from
  // server 0, still cheaper than the cost-6 origin).
  const auto plan = temp_path("swap");
  write_file(plan, "placement 4 8\nreplica 3 0\n");

  net::Fd ctl = connect_client(daemon.control_port());
  const auto reply =
      control_rpc(ctl.get(), "RELOAD placement " + plan.string());
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("OK ", 0), 0u) << *reply;
  EXPECT_NE(reply->find("generation=2"), std::string::npos) << *reply;

  sys::ReplicaPlacement expected(fx.t.system->server_storage(),
                                 fx.t.system->site_bytes());
  expected.add(3, 0);
  EXPECT_NE(reply->find("digest=" +
                        hex16(placement::placement_digest(expected))),
            std::string::npos)
      << *reply;

  // The already-open data session sees the new generation.
  const auto after = rpc(client.get(), 0, 0, 1);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->kind, AnswerKind::kReplica);
  EXPECT_EQ(after->server, 3u);
  EXPECT_DOUBLE_EQ(after->cost, 3.0);

  runner.stop();
  EXPECT_EQ(daemon.stats().reloads_applied, 1u);
  EXPECT_EQ(daemon.generation(), 2u);
}

TEST(ControlServer, MalformedReloadLeavesThePreviousGenerationServing) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  const std::string bad = std::string(HYBRIDCDN_TEST_DATA_DIR) +
                          "/corpus/rc_placement_truncated.txt";
  net::Fd ctl = connect_client(daemon.control_port());
  const auto reply = control_rpc(ctl.get(), "RELOAD placement " + bad);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR", 0), 0u) << *reply;
  EXPECT_NE(reply->find("line 2"), std::string::npos) << *reply;

  // Same connection, same daemon: generation 1 still serving, digest
  // untouched.
  const auto status = control_rpc(ctl.get(), "STATUS");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status_field(*status, "generation"), "1");
  EXPECT_EQ(status_field(*status, "placement_digest"),
            hex16(placement::placement_digest(fx.placement.placement)));
  EXPECT_EQ(status_field(*status, "reload_failures"), "1");

  net::Fd client = connect_client(daemon.port());
  const auto a = rpc(client.get(), 0, 0, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->server, 1u);

  runner.stop();
  EXPECT_EQ(daemon.stats().reloads_failed, 1u);
  EXPECT_EQ(daemon.stats().reloads_applied, 0u);
  EXPECT_EQ(daemon.generation(), 1u);
}

TEST(ControlServer, ReloadEndpointsUpgradesModelModeToRacing) {
  Fixture fx;
  test::MockReplica live(test::MockReplica::Mode::kNormal);

  DaemonConfig config = base_config(fx);  // model mode: no endpoints
  config.race.stagger = 20ms;
  config.race.attempt_timeout = 500ms;
  config.race.overall_deadline = 3000ms;
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  const auto model = rpc(client.get(), 0, 0, 1);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->attempts, 0u);  // model mode: no sockets were raced

  const auto eps = temp_path("eps");
  write_file(eps, "replica 1 127.0.0.1 " + std::to_string(live.port()) +
                      "\n");
  net::Fd ctl = connect_client(daemon.control_port());
  const auto reply =
      control_rpc(ctl.get(), "RELOAD endpoints " + eps.string());
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("OK ", 0), 0u) << *reply;
  EXPECT_NE(reply->find("generation=2"), std::string::npos) << *reply;

  // Same daemon now races real sockets and reports the attempt.
  const auto raced = rpc(client.get(), 0, 0, 1);
  ASSERT_TRUE(raced.has_value());
  EXPECT_EQ(raced->kind, AnswerKind::kReplica);
  EXPECT_EQ(raced->server, 1u);
  EXPECT_GE(raced->attempts, 1u);

  runner.stop();
  EXPECT_GE(daemon.stats().races, 1u);
}

TEST(ControlServer, DrainViaControlStopsTheDaemon) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);

  daemon.start();
  std::thread loop([&daemon] { daemon.run(); });

  net::Fd ctl = connect_client(daemon.control_port());
  const auto reply = control_rpc(ctl.get(), "DRAIN");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "OK draining");

  // run() returns on its own — no request_stop() from this thread.
  loop.join();
  EXPECT_TRUE(daemon.draining());
}

TEST(ControlServer, OversizedControlLineGetsErrAndTheSessionCloses) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd ctl = connect_client(daemon.control_port());
  const std::string flood(kMaxControlLine + 64, 'a');  // no newline at all
  ASSERT_TRUE(net::write_all(ctl.get(), flood.data(), flood.size(), 3000));
  const auto line = net::read_line(ctl.get(), 5000);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->rfind("ERR", 0), 0u);
  EXPECT_FALSE(net::read_line(ctl.get(), 2000).has_value());

  // A fresh control session still works.
  net::Fd fresh = connect_client(daemon.control_port());
  const auto status = control_rpc(fresh.get(), "STATUS");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->rfind("OK ", 0), 0u);
}

TEST(ControlServer, SighupPathReloadsTheConfiguredPlacementFile) {
  Fixture fx;
  const auto plan = temp_path("sighup");
  write_file(plan, "placement 4 8\nreplica 3 0\n");

  DaemonConfig config = base_config(fx);
  config.reload_placement_path = plan.string();
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  // request_reload() is the SIGHUP handler's body; calling it from
  // another thread exercises the same async-signal-safe path.
  daemon.request_reload();

  // Poll the data plane until the new generation answers.
  net::Fd client = connect_client(daemon.port());
  const auto deadline = Clock::now() + 5s;
  std::optional<RedirectAnswer> a;
  while (Clock::now() < deadline) {
    a = rpc(client.get(), 0, 0, 1);
    ASSERT_TRUE(a.has_value());
    if (a->kind == AnswerKind::kReplica && a->server == 3u) break;
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->server, 3u);

  runner.stop();
  EXPECT_EQ(daemon.stats().reloads_applied, 1u);
  EXPECT_EQ(daemon.generation(), 2u);
}

// ---------------------------------------------------------------------------
// The reload-under-load mini-drill: placements swap while a client
// hammers the data plane.  Zero dropped or hung requests, every answer
// consistent with *some* applied generation, generations strictly
// monotone.  scripts/reload_drill.sh runs the same drill against the real
// binaries.

TEST(ControlServer, ReloadUnderLoadDropsNothingAndStaysMonotone) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  // Plan A keeps the fixture's replicas {1, 2}; plan B moves site 0's
  // only replica to server 3.  From server 0 every answer is therefore a
  // REPLICA at server 1 (A) or server 3 (B) — anything else is a torn
  // generation.
  const auto plan_a = temp_path("drill_a");
  const auto plan_b = temp_path("drill_b");
  write_file(plan_a, "placement 4 8\nreplica 1 0\nreplica 2 0\n");
  write_file(plan_b, "placement 4 8\nreplica 3 0\n");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> torn{0};
  std::thread load([&] {
    net::Fd client = connect_client(daemon.port());
    while (!stop.load(std::memory_order_relaxed)) {
      const auto a = rpc(client.get(), 0, 0, 1);
      if (!a.has_value()) {
        failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      answered.fetch_add(1, std::memory_order_relaxed);
      const bool consistent = a->kind == AnswerKind::kReplica &&
                              (a->server == 1u || a->server == 3u);
      if (!consistent) torn.fetch_add(1, std::memory_order_relaxed);
    }
  });

  net::Fd ctl = connect_client(daemon.control_port());
  std::uint64_t last_generation = 1;
  for (int swap = 0; swap < 6; ++swap) {
    const auto& plan = (swap % 2 == 0) ? plan_b : plan_a;
    const auto reply =
        control_rpc(ctl.get(), "RELOAD placement " + plan.string(), 10000);
    ASSERT_TRUE(reply.has_value()) << "swap " << swap;
    ASSERT_EQ(reply->rfind("OK ", 0), 0u) << *reply;
    const auto status = control_rpc(ctl.get(), "STATUS");
    ASSERT_TRUE(status.has_value());
    const std::uint64_t generation =
        std::stoull(status_field(*status, "generation"));
    EXPECT_GT(generation, last_generation) << *status;
    last_generation = generation;
    std::this_thread::sleep_for(20ms);  // let requests land mid-generation
  }

  stop.store(true, std::memory_order_relaxed);
  load.join();
  runner.stop();

  EXPECT_EQ(failed.load(), 0u);
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(last_generation, 7u);
  EXPECT_EQ(daemon.stats().reloads_applied, 6u);
}

// ---------------------------------------------------------------------------
// Adaptive health: a slow/refusing replica's EWMA makes it an outlier and
// the race ranking demotes it — won-by-rank shifts from rank 2 back to
// rank 1 without any fault schedule or prober down-mask.

TEST(ControlServer, EwmaOutlierEjectionShiftsWinsBackToRankOne) {
  Fixture fx;
  // Rank 1 (server 1) refuses connects for a minute; rank 2 (server 2)
  // and site 0's origin are healthy — a 3-endpoint fleet, the EWMA
  // minimum.
  test::MockReplica refusing(test::MockReplica::Mode::kListenDelay, 60s);
  test::MockReplica live(test::MockReplica::Mode::kNormal);
  test::MockReplica origin(test::MockReplica::Mode::kNormal);

  EndpointMap endpoints;
  endpoints.replicas.resize(3);
  endpoints.replicas[1] = Endpoint{"127.0.0.1", refusing.port()};
  endpoints.replicas[2] = Endpoint{"127.0.0.1", live.port()};
  endpoints.origins.resize(1);
  endpoints.origins[0] = Endpoint{"127.0.0.1", origin.port()};

  DaemonConfig config = base_config(fx);
  config.endpoints = &endpoints;
  config.race.stagger = 30ms;
  config.race.attempt_timeout = 100ms;
  config.race.overall_deadline = 2000ms;
  config.race.max_retry_rounds = 1;
  // Fast probes feed the EWMA; the up/down mask stays neutered
  // (down_after=1000 from base_config), so any routing shift is the
  // EWMA's doing alone.
  config.health.probe_interval = 40ms;
  config.health.probe_timeout = 100ms;
  config.health.up_after = 1;
  config.adaptive = true;
  config.ewma.alpha = 0.5;
  config.ewma.eject_multiplier = 2.0;
  config.ewma.min_samples = 3;
  config.ewma.min_fleet = 3;
  config.ewma.eject_cooldown = 10s;  // no half-open flap inside the test
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  // Before ejection the refusing rank-1 endpoint loses each race the slow
  // way; after ejection server 2 *is* rank 1.  Require three consecutive
  // rank-1 wins so a single lucky race cannot pass the test.
  const auto deadline = Clock::now() + 15s;
  int consecutive = 0;
  while (Clock::now() < deadline && consecutive < 3) {
    const auto a = rpc(client.get(), 0, 0, 1);
    ASSERT_TRUE(a.has_value());
    if (a->kind == AnswerKind::kReplica && a->server == 2u &&
        a->winner_rank == 1u) {
      ++consecutive;
    } else {
      consecutive = 0;
    }
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_EQ(consecutive, 3) << "EWMA never demoted the refusing replica";

  runner.stop();
  ASSERT_NE(daemon.latency_ewma(), nullptr);
  EXPECT_GE(daemon.latency_ewma()->ejections(), 1u);
  EXPECT_EQ(daemon.latency_ewma()->circuit(LatencyEwma::Kind::kReplica, 1),
            LatencyEwma::Circuit::kEjected);
}

// ---------------------------------------------------------------------------
// Slow readers: a client that pipelines thousands of requests but never
// reads must be disconnected once its backlog exceeds max_session_outbuf —
// the daemon's memory stays bounded.

TEST(RedirectorDaemon, SlowReaderIsDisconnectedAtTheOutbufCap) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  config.control = false;
  config.max_session_outbuf = 8 * 1024;
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  // Shrink the client's receive window so the kernel absorbs little and
  // the daemon's userspace outbuf takes the backlog.
  const int rcvbuf = 4096;
  ASSERT_EQ(::setsockopt(client.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                         sizeof(rcvbuf)),
            0);

  // Never read a reply.  The kernel absorbs up to the daemon's send
  // buffer (tcp_wmem caps it in the single-digit MiB), then the daemon's
  // userspace outbuf grows past the 8 KiB cap and the session is closed;
  // because unread request bytes are still queued daemon-side, that close
  // is an RST, which fails a subsequent client write.  That write failure
  // is the success condition.
  // Keep writing until the daemon gives up on us.  Replies pile into the
  // daemon's kernel send buffer (tcp_wmem-bounded) and then its userspace
  // outbuf; past the 8 KiB cap the session is closed.  Because the client
  // is still writing, unread request bytes are queued daemon-side at
  // close time, so the close is an RST and a subsequent write here fails
  // — the deterministic end condition.
  const std::string req = format_request({0, 0, 1});
  std::string block;
  for (int i = 0; i < 1000; ++i) block += req;
  bool write_failed = false;
  const auto give_up = Clock::now() + 30s;
  while (!write_failed && Clock::now() < give_up) {
    if (!net::write_all(client.get(), block.data(), block.size(), 5000)) {
      write_failed = true;
    }
  }
  EXPECT_TRUE(write_failed) << "daemon never disconnected the slow reader";

  runner.stop();
  EXPECT_GE(daemon.stats().slow_reader_closes, 1u);
}

}  // namespace
}  // namespace cdn::redirectd
