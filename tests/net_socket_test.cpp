// Socket primitives: listener, non-blocking connect, IO wrappers, and the
// blocking helpers the tests/load client use.

#include "src/net/socket.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/util/error.h"

namespace cdn::net {
namespace {

TEST(TcpListener, EphemeralBindReportsPort) {
  TcpListener listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(listener.port(), 0);
  EXPECT_EQ(listener.host(), "127.0.0.1");
}

TEST(TcpListener, InvalidHostThrows) {
  EXPECT_THROW(TcpListener::bind("not-an-ip", 0), PreconditionError);
}

TEST(Socket, ConnectAcceptRoundtrip) {
  TcpListener listener = TcpListener::bind("127.0.0.1", 0);
  ConnectStart conn = start_connect("127.0.0.1", listener.port());
  ASSERT_TRUE(conn.fd.valid());

  // Accept may need a beat on a loaded machine.
  std::optional<Fd> server;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(2);
  while (!server.has_value() &&
         std::chrono::steady_clock::now() < deadline) {
    server = listener.accept();
    if (!server.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(server.has_value());

  ASSERT_TRUE(write_all(server->get(), "ping\n", 5, 2000));
  const auto line = read_line(conn.fd.get(), 2000);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "ping\n");
  EXPECT_EQ(finish_connect(conn.fd.get()), 0);
}

TEST(Socket, ConnectRefusedReportsError) {
  // Bind-then-close reserves a port nobody listens on.
  std::uint16_t dead_port;
  {
    TcpListener tmp = TcpListener::bind("127.0.0.1", 0);
    dead_port = tmp.port();
  }
  ConnectStart conn = start_connect("127.0.0.1", dead_port);
  if (!conn.fd.valid()) {
    EXPECT_NE(conn.error, 0);  // refused synchronously
    return;
  }
  // Asynchronous refusal: the socket becomes writable with SO_ERROR set.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(2);
  int err = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    err = finish_connect(conn.fd.get());
    if (err != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_NE(err, 0);
}

TEST(Socket, WaitWritableResolvesInProgressConnect) {
  TcpListener listener = TcpListener::bind("127.0.0.1", 0);
  ConnectStart conn = start_connect("127.0.0.1", listener.port());
  ASSERT_TRUE(conn.fd.valid());
  if (conn.in_progress) {
    ASSERT_TRUE(wait_writable(conn.fd.get(), 2000));
  }
  EXPECT_EQ(finish_connect(conn.fd.get()), 0);
}

TEST(Socket, WaitWritableSurfacesAsyncConnectRefusal) {
  std::uint16_t dead_port;
  {
    TcpListener tmp = TcpListener::bind("127.0.0.1", 0);
    dead_port = tmp.port();
  }
  ConnectStart conn = start_connect("127.0.0.1", dead_port);
  if (!conn.fd.valid()) {
    EXPECT_NE(conn.error, 0);  // refused synchronously
    return;
  }
  // A refused connect also makes the socket writable — SO_ERROR then
  // carries the failure, so the caller fails fast instead of discovering
  // it on the first write/read.
  ASSERT_TRUE(wait_writable(conn.fd.get(), 2000));
  EXPECT_NE(finish_connect(conn.fd.get()), 0);
}

TEST(Socket, ReadSomeReportsEofOnPeerClose) {
  TcpListener listener = TcpListener::bind("127.0.0.1", 0);
  ConnectStart conn = start_connect("127.0.0.1", listener.port());
  ASSERT_TRUE(conn.fd.valid());
  std::optional<Fd> server;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(2);
  while (!server.has_value() &&
         std::chrono::steady_clock::now() < deadline) {
    server = listener.accept();
  }
  ASSERT_TRUE(server.has_value());
  server->reset();  // close without sending anything

  char buf[8];
  IoResult r{};
  const auto io_deadline = std::chrono::steady_clock::now() +
                           std::chrono::seconds(2);
  do {
    r = read_some(conn.fd.get(), buf, sizeof(buf));
  } while (r.status == IoStatus::kWouldBlock &&
           std::chrono::steady_clock::now() < io_deadline);
  EXPECT_EQ(r.status, IoStatus::kClosed);
}

TEST(Socket, ReadLineEnforcesLengthCap) {
  TcpListener listener = TcpListener::bind("127.0.0.1", 0);
  ConnectStart conn = start_connect("127.0.0.1", listener.port());
  ASSERT_TRUE(conn.fd.valid());
  std::optional<Fd> server;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(2);
  while (!server.has_value() &&
         std::chrono::steady_clock::now() < deadline) {
    server = listener.accept();
  }
  ASSERT_TRUE(server.has_value());

  const std::string oversized(64, 'x');  // no newline within the cap
  ASSERT_TRUE(write_all(server->get(), oversized.data(), oversized.size(),
                        2000));
  EXPECT_FALSE(read_line(conn.fd.get(), 500, 16).has_value());
}

TEST(Socket, ErrnoMessageIsHumanReadable) {
  const std::string msg = errno_message(111);
  EXPECT_NE(msg.find("(111)"), std::string::npos);
}

}  // namespace
}  // namespace cdn::net
