// Unit tests for the hybrid greedy algorithm (Figure 2).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/cdn/cost.h"
#include "src/obs/registry.h"
#include "src/placement/fixed_split.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/placement/model_support.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using cdn::model::PbMode;
using cdn::placement::greedy_global;
using cdn::placement::hybrid_greedy;
using cdn::placement::HybridGreedyOptions;
using cdn::placement::pure_caching;
using cdn::test::TestSystem;

TEST(HybridGreedyTest, PredictedCostBeatsBothStandalones) {
  const auto t = TestSystem::make();
  const auto hybrid = hybrid_greedy(*t.system);
  const auto repl = greedy_global(*t.system);
  const auto cache = pure_caching(*t.system);
  EXPECT_LE(hybrid.predicted_total_cost, repl.predicted_total_cost);
  EXPECT_LE(hybrid.predicted_total_cost, cache.predicted_total_cost);
}

TEST(HybridGreedyTest, CostTrajectoryDecreasesMonotonically) {
  const auto t = TestSystem::make();
  const auto result = hybrid_greedy(*t.system);
  ASSERT_GE(result.cost_trajectory.size(), 1u);
  for (std::size_t i = 1; i < result.cost_trajectory.size(); ++i) {
    EXPECT_LE(result.cost_trajectory[i],
              result.cost_trajectory[i - 1] + 1e-9)
        << "iteration " << i;
  }
}

TEST(HybridGreedyTest, StartsFromPureCachingCost) {
  const auto t = TestSystem::make();
  const auto hybrid = hybrid_greedy(*t.system);
  const auto cache = pure_caching(*t.system);
  EXPECT_NEAR(hybrid.cost_trajectory.front(), cache.predicted_total_cost,
              1e-6 * cache.predicted_total_cost);
}

TEST(HybridGreedyTest, LeavesCacheSpace) {
  // The hybrid's whole point: it should NOT fill all storage with replicas.
  const auto t = TestSystem::make();
  const auto result = hybrid_greedy(*t.system);
  std::uint64_t total_cache = 0;
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    total_cache += result.cache_bytes(static_cast<cdn::sys::ServerIndex>(i));
  }
  EXPECT_GT(total_cache, 0u);
  EXPECT_TRUE(result.caching_enabled);
}

TEST(HybridGreedyTest, CreatesFewerReplicasThanPureReplication) {
  const auto t = TestSystem::make();
  const auto hybrid = hybrid_greedy(*t.system);
  const auto repl = greedy_global(*t.system);
  EXPECT_LE(hybrid.replicas_created, repl.replicas_created);
}

TEST(HybridGreedyTest, ModeledHitsAreValidProbabilities) {
  const auto t = TestSystem::make();
  const auto result = hybrid_greedy(*t.system);
  for (double h : result.modeled_hit) {
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0);
  }
}

TEST(HybridGreedyTest, ReplicatedSitesHaveZeroModeledHit) {
  const auto t = TestSystem::make();
  const auto result = hybrid_greedy(*t.system);
  const std::size_t m = t.system->site_count();
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (result.placement.is_replicated(
              static_cast<cdn::sys::ServerIndex>(i),
              static_cast<cdn::sys::SiteIndex>(j))) {
        EXPECT_DOUBLE_EQ(result.modeled_hit[i * m + j], 0.0);
      }
    }
  }
}

TEST(HybridGreedyTest, RespectsStorageBudgets) {
  const auto t = TestSystem::make();
  const auto result = hybrid_greedy(*t.system);
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    const auto server = static_cast<cdn::sys::ServerIndex>(i);
    EXPECT_LE(result.placement.used_bytes(server),
              t.system->server_storage(server));
  }
}

TEST(HybridGreedyTest, MaxReplicasCap) {
  const auto t = TestSystem::make();
  HybridGreedyOptions options;
  options.max_replicas = 2;
  const auto result = hybrid_greedy(*t.system, options);
  EXPECT_LE(result.replicas_created, 2u);
}

TEST(HybridGreedyTest, PbModesAgreeClosely) {
  // The paper's observation: computing p_B once at init gives the same
  // result as recomputing each iteration.  Verify the predicted costs agree
  // within a few percent (they need not be bit-identical).
  const auto t = TestSystem::make();
  HybridGreedyOptions at_init{.pb_mode = PbMode::kAtInit};
  HybridGreedyOptions per_iter{.pb_mode = PbMode::kPerIteration};
  const auto a = hybrid_greedy(*t.system, at_init);
  const auto b = hybrid_greedy(*t.system, per_iter);
  EXPECT_NEAR(a.predicted_total_cost / b.predicted_total_cost, 1.0, 0.05);
}

TEST(HybridGreedyTest, DeterministicAcrossRuns) {
  const auto t = TestSystem::make();
  const auto a = hybrid_greedy(*t.system);
  const auto b = hybrid_greedy(*t.system);
  EXPECT_EQ(a.replicas_created, b.replicas_created);
  EXPECT_DOUBLE_EQ(a.predicted_total_cost, b.predicted_total_cost);
}

TEST(HybridGreedyTest, TinyStorageDegeneratesToPureCaching) {
  // Storage too small for any site replica: the hybrid must create nothing
  // and match pure caching exactly.
  const auto t = TestSystem::make(4, 6, 2, 100, 0.001);
  const auto hybrid = hybrid_greedy(*t.system);
  EXPECT_EQ(hybrid.replicas_created, 0u);
  const auto cache = pure_caching(*t.system);
  EXPECT_NEAR(hybrid.predicted_total_cost, cache.predicted_total_cost,
              1e-6 * cache.predicted_total_cost);
}

TEST(HybridGreedyTest, MetricsDoNotChangeTheResult) {
  const auto t = TestSystem::make();
  const auto plain = hybrid_greedy(*t.system);
  cdn::obs::Registry registry;
  HybridGreedyOptions options;
  options.metrics = &registry;
  const auto instrumented = hybrid_greedy(*t.system, options);
  EXPECT_EQ(plain.replicas_created, instrumented.replicas_created);
  EXPECT_DOUBLE_EQ(plain.predicted_total_cost,
                   instrumented.predicted_total_cost);
}

TEST(HybridGreedyTest, IterationLogDecomposesEachBenefit) {
  const auto t = TestSystem::make();
  cdn::obs::Registry registry;
  HybridGreedyOptions options;
  options.metrics = &registry;
  const auto result = hybrid_greedy(*t.system, options);

  const auto* log = registry.find_table("placement/hybrid/iterations");
  ASSERT_NE(log, nullptr);
  // One row per committed replica.
  EXPECT_EQ(log->row_count(), result.replicas_created);
  const auto& cols = log->columns();
  const auto col = [&](const std::string& name) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (cols[c] == name) return c;
    }
    ADD_FAILURE() << "missing column " << name;
    return std::size_t{0};
  };
  const std::size_t benefit_col = col("benefit");
  const std::size_t local_col = col("local_gain");
  const std::size_t relative_col = col("relative_gain");
  const std::size_t penalty_col = col("cache_penalty");
  for (const auto& row : log->rows()) {
    // hybrid_candidate_benefit_parts must reproduce the single-accumulator
    // benefit: local + relative - penalty == benefit, up to rounding.
    const double recomposed =
        row[local_col] + row[relative_col] - row[penalty_col];
    EXPECT_NEAR(recomposed, row[benefit_col],
                1e-6 * std::max(1.0, std::abs(row[benefit_col])));
    EXPECT_GT(row[benefit_col], 0.0);  // only positive benefits commit
  }

  // The cost series mirrors the trajectory (initial cost + one per commit).
  const auto* cost = registry.find_series("placement/hybrid/cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->size(), result.cost_trajectory.size());
  const auto* evaluated =
      registry.find_counter("placement/hybrid/candidates_evaluated");
  ASSERT_NE(evaluated, nullptr);
  EXPECT_GT(evaluated->value(), 0u);
}

TEST(HybridGreedyTest, DistantPrimariesGetMoreReplicas) {
  // When primaries are far away, redirection is expensive and the hybrid
  // should buy more replicas than when primaries are adjacent.
  const auto near = TestSystem::make(4, 6, 2, 100, 0.15, /*primary_hops=*/1.0);
  const auto far = TestSystem::make(4, 6, 2, 100, 0.15, /*primary_hops=*/20.0);
  const auto r_near = hybrid_greedy(*near.system);
  const auto r_far = hybrid_greedy(*far.system);
  EXPECT_GE(r_far.replicas_created, r_near.replicas_created);
}

}  // namespace
