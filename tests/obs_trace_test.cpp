// Unit tests for the sampled event trace sink.

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/trace.h"

namespace {

using cdn::obs::EventCause;
using cdn::obs::to_string;
using cdn::obs::TraceEvent;
using cdn::obs::TraceSink;

TraceEvent make_event(std::uint64_t t) {
  TraceEvent e;
  e.t = t;
  e.server = 3;
  e.site = 7;
  e.rank = 1;
  e.cause = EventCause::kCacheHit;
  e.served_by = 3;
  e.measured = true;
  e.hops = 0.0;
  e.latency_ms = 2.0;
  return e;
}

TEST(TraceSinkTest, RateOneSamplesEverything) {
  TraceSink sink(1.0);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    if (sink.should_sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 100);
}

TEST(TraceSinkTest, RateZeroSamplesNothing) {
  TraceSink sink(0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(sink.should_sample());
  }
}

TEST(TraceSinkTest, SamplingIsDeterministicForSameSeed) {
  TraceSink a(0.3, 123), b(0.3, 123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.should_sample(), b.should_sample());
  }
}

TEST(TraceSinkTest, CapCountsDroppedEvents) {
  TraceSink sink(1.0, 1, /*max_events=*/3);
  for (std::uint64_t t = 0; t < 10; ++t) sink.record(make_event(t));
  EXPECT_EQ(sink.recorded(), 3u);
  EXPECT_EQ(sink.dropped(), 7u);
}

TEST(TraceSinkTest, ContextsLabelSubsequentEvents) {
  TraceSink sink(1.0);
  sink.record(make_event(0));  // default (empty) context
  sink.begin_context("hybrid");
  sink.record(make_event(1));
  const std::string csv = sink.csv();
  std::stringstream ss(csv);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line,
            "context,t,server,site,rank,cause,served_by,measured,hops,"
            "latency_ms");
  std::getline(ss, line);
  EXPECT_EQ(line.rfind(",0,3,7,1,cache-hit,3,1,", 0), 0u);  // empty context
  std::getline(ss, line);
  EXPECT_EQ(line.rfind("hybrid,1,", 0), 0u);
}

TEST(TraceSinkTest, CauseNamesAreStable) {
  EXPECT_STREQ(to_string(EventCause::kReplica), "replica");
  EXPECT_STREQ(to_string(EventCause::kCacheHit), "cache-hit");
  EXPECT_STREQ(to_string(EventCause::kCacheMiss), "cache-miss");
  EXPECT_STREQ(to_string(EventCause::kStaleRefresh), "stale-refresh");
  EXPECT_STREQ(to_string(EventCause::kUncacheable), "uncacheable");
}

}  // namespace
