// Unit tests of the serialisation primitives and the checkpoint file
// format: roundtrips, atomic writes, and rejection of every corruption
// mode (truncation, bit flips, bad magic, bad version, trailing bytes).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/recover/checkpoint.h"
#include "src/util/error.h"
#include "src/util/serial.h"

namespace {

using namespace cdn;

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hybridcdn_recover_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

recover::Checkpoint sample_checkpoint() {
  recover::Checkpoint ckpt;
  ckpt.fingerprint = {{"config", 0x1111u}, {"system", 0x2222u}};
  util::ByteWriter w;
  w.u64(123456789u);
  w.f64(3.25);
  w.str("payload");
  ckpt.payload = w.buffer();
  return ckpt;
}

TEST(ByteCodecTest, RoundTripsEveryPrimitive) {
  util::ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(-0.0);
  w.f64(1e300);
  w.str("hello");
  w.str("");

  util::ByteReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xabu);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // exact bit pattern survives
  EXPECT_EQ(r.f64(), 1e300);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(ByteCodecTest, ReaderRejectsTruncatedInput) {
  util::ByteWriter w;
  w.u64(7);
  std::vector<std::uint8_t> bytes = w.buffer();
  bytes.pop_back();
  util::ByteReader r(bytes);
  EXPECT_THROW(r.u64(), PreconditionError);
}

TEST(ByteCodecTest, ReaderRejectsOverlongStringLength) {
  util::ByteWriter w;
  w.u64(1u << 30);  // claims a gigabyte of string, provides none
  util::ByteReader r(w.buffer());
  EXPECT_THROW(r.str(), PreconditionError);
}

TEST(ByteCodecTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of "a" from the reference specification.
  const char a = 'a';
  EXPECT_EQ(util::fnv1a(&a, 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(util::fnv1a("", 0), 0xcbf29ce484222325ull);
}

TEST_F(CheckpointFileTest, RoundTripsFingerprintAndPayload) {
  const auto ckpt = sample_checkpoint();
  const std::uint64_t size = recover::write_file(path("ck.bin"), ckpt);
  EXPECT_EQ(size, std::filesystem::file_size(path("ck.bin")));

  const auto loaded = recover::read_file(path("ck.bin"));
  EXPECT_EQ(loaded.fingerprint, ckpt.fingerprint);
  EXPECT_EQ(loaded.payload, ckpt.payload);
}

TEST_F(CheckpointFileTest, WriteLeavesNoTempFileBehind) {
  recover::write_file(path("ck.bin"), sample_checkpoint());
  EXPECT_TRUE(std::filesystem::exists(path("ck.bin")));
  EXPECT_FALSE(std::filesystem::exists(path("ck.bin") + ".tmp"));
}

TEST_F(CheckpointFileTest, RewriteReplacesAtomically) {
  auto ckpt = sample_checkpoint();
  recover::write_file(path("ck.bin"), ckpt);
  ckpt.payload.push_back(0x5a);
  recover::write_file(path("ck.bin"), ckpt);
  const auto loaded = recover::read_file(path("ck.bin"));
  EXPECT_EQ(loaded.payload, ckpt.payload);
}

TEST_F(CheckpointFileTest, MissingFileRejected) {
  EXPECT_THROW(recover::read_file(path("absent.bin")), PreconditionError);
}

TEST_F(CheckpointFileTest, EveryTruncationRejected) {
  recover::write_file(path("ck.bin"), sample_checkpoint());
  std::ifstream in(path("ck.bin"), std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Cutting the file at any length, including zero, must be rejected.
  for (std::size_t keep = 0; keep < bytes.size(); keep += 7) {
    std::ofstream out(path("cut.bin"), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW(recover::read_file(path("cut.bin")), PreconditionError)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST_F(CheckpointFileTest, EveryBitFlipRejected) {
  recover::write_file(path("ck.bin"), sample_checkpoint());
  std::ifstream in(path("ck.bin"), std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (std::size_t i = 0; i < bytes.size(); i += 3) {
    auto flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x40);
    std::ofstream out(path("flip.bin"), std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
    out.close();
    EXPECT_THROW(recover::read_file(path("flip.bin")), PreconditionError)
        << "flipped byte " << i;
  }
}

TEST_F(CheckpointFileTest, TrailingBytesRejected) {
  recover::write_file(path("ck.bin"), sample_checkpoint());
  std::ofstream out(path("ck.bin"),
                    std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  EXPECT_THROW(recover::read_file(path("ck.bin")), PreconditionError);
}

TEST_F(CheckpointFileTest, ForeignFileRejected) {
  std::ofstream(path("junk.bin"), std::ios::binary)
      << "this is not a checkpoint, but it is long enough to have a header";
  EXPECT_THROW(recover::read_file(path("junk.bin")), PreconditionError);
}

TEST_F(CheckpointFileTest, FingerprintMismatchNamesTheSections) {
  const auto ckpt = sample_checkpoint();
  recover::write_file(path("ck.bin"), ckpt);
  const auto loaded = recover::read_file(path("ck.bin"));

  // Identical fingerprint passes.
  EXPECT_NO_THROW(recover::check_fingerprint(loaded, ckpt.fingerprint));

  // A changed hash names the changed section.
  try {
    recover::check_fingerprint(loaded, {{"config", 0x9999u},
                                        {"system", 0x2222u}});
    FAIL() << "mismatch not detected";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("config"), std::string::npos);
    EXPECT_EQ(std::string(e.what()).find("system"), std::string::npos);
  }

  // A section the run expects but the file lacks is named too.
  try {
    recover::check_fingerprint(
        loaded,
        {{"config", 0x1111u}, {"system", 0x2222u}, {"faults", 0x3333u}});
    FAIL() << "missing section not detected";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("faults"), std::string::npos);
  }
}

TEST(InterruptedTest, CarriesIndexAndPath) {
  const recover::Interrupted e(42, "ck.bin");
  EXPECT_EQ(e.request_index(), 42u);
  EXPECT_EQ(e.checkpoint_path(), "ck.bin");
  EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
  EXPECT_EQ(recover::kInterruptedExitCode, 75);
}

}  // namespace
