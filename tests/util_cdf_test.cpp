// Unit tests for the empirical CDF used to render Figures 3-5.

#include <gtest/gtest.h>

#include "src/util/error.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/util/cdf.h"

namespace {

using cdn::util::CdfPoint;
using cdn::util::EmpiricalCdf;
using cdn::util::format_cdf_table;

EmpiricalCdf make_cdf(std::initializer_list<double> xs) {
  EmpiricalCdf cdf;
  for (double x : xs) cdf.add(x);
  return cdf;
}

TEST(EmpiricalCdfTest, EvaluateCountsInclusive) {
  const auto cdf = make_cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.evaluate(1.0), 0.25);   // <= is inclusive
  EXPECT_DOUBLE_EQ(cdf.evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.evaluate(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.evaluate(99.0), 1.0);
}

TEST(EmpiricalCdfTest, DuplicatesStackUp) {
  const auto cdf = make_cdf({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.evaluate(2.0), 0.75);
}

TEST(EmpiricalCdfTest, QuantileInverts) {
  const auto cdf = make_cdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
}

TEST(EmpiricalCdfTest, MeanMinMax) {
  const auto cdf = make_cdf({1.0, 2.0, 6.0});
  EXPECT_DOUBLE_EQ(cdf.mean(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 6.0);
}

TEST(EmpiricalCdfTest, GridSpansRangeAndIsMonotone) {
  auto cdf = make_cdf({});
  for (int i = 0; i < 1000; ++i) cdf.add(static_cast<double>(i % 37));
  const auto grid = cdf.grid(11);
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_DOUBLE_EQ(grid.front().x, cdf.min());
  EXPECT_DOUBLE_EQ(grid.back().x, cdf.max());
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LE(grid[i - 1].f, grid[i].f);
  }
  EXPECT_DOUBLE_EQ(grid.back().f, 1.0);
}

TEST(EmpiricalCdfTest, AtEvaluatesArbitraryPoints) {
  const auto cdf = make_cdf({1.0, 3.0});
  const std::vector<double> xs{0.0, 2.0, 4.0};
  const auto pts = cdf.at(xs);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].f, 0.0);
  EXPECT_DOUBLE_EQ(pts[1].f, 0.5);
  EXPECT_DOUBLE_EQ(pts[2].f, 1.0);
}

TEST(EmpiricalCdfTest, AddAfterEvaluateResorts) {
  auto cdf = make_cdf({1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.evaluate(1.5), 0.5);
  cdf.add(0.0);  // invalidates the lazy sort
  EXPECT_DOUBLE_EQ(cdf.evaluate(1.5), 2.0 / 3.0);
}

TEST(EmpiricalCdfTest, MergeCombinesSamples) {
  auto a = make_cdf({1.0, 2.0});
  const auto b = make_cdf({3.0, 4.0});
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.evaluate(2.5), 0.5);
}

TEST(EmpiricalCdfTest, EmptyThrows) {
  const EmpiricalCdf cdf;
  EXPECT_THROW(cdf.evaluate(1.0), cdn::PreconditionError);
  EXPECT_THROW(cdf.quantile(0.5), cdn::PreconditionError);
  EXPECT_THROW(cdf.mean(), cdn::PreconditionError);
}

TEST(FormatCdfTableTest, AlignsNamesAndRows) {
  const auto a = make_cdf({1.0, 2.0}).grid(3);
  const auto b = make_cdf({1.0, 3.0}).grid(3);
  const std::vector<std::string> names{"alpha", "beta"};
  const std::vector<std::vector<CdfPoint>> curves{a, b};
  const std::string table = format_cdf_table(names, curves);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  // Header + 3 grid rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 4);
}

TEST(FormatCdfTableTest, RejectsMismatchedInput) {
  const auto a = make_cdf({1.0, 2.0}).grid(3);
  const auto b = make_cdf({1.0, 3.0}).grid(4);
  const std::vector<std::string> names{"a", "b"};
  const std::vector<std::vector<CdfPoint>> curves{a, b};
  EXPECT_THROW(format_cdf_table(names, curves), cdn::PreconditionError);
}

}  // namespace
