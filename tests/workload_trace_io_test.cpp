// Unit tests for trace recording, serialisation and replay.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/placement/fixed_split.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "src/workload/trace_io.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;
using cdn::test::TestSystem;

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hybridcdn_trace_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

workload::RecordedTrace sample_trace(const TestSystem& t, std::size_t n) {
  workload::RequestStream stream(*t.catalog, *t.demand, 42);
  return workload::RecordedTrace::record(stream, n);
}

TEST_F(TraceIoTest, RecordProducesRequestedCount) {
  const auto t = TestSystem::make();
  const auto trace = sample_trace(t, 1000);
  EXPECT_EQ(trace.size(), 1000u);
  trace.validate(t.system->server_count(), t.system->site_count(),
                 t.catalog->objects_per_site());
}

TEST_F(TraceIoTest, BinaryRoundTrip) {
  const auto t = TestSystem::make();
  const auto trace = sample_trace(t, 5000);
  trace.save_binary(path("trace.bin"));
  const auto loaded = workload::RecordedTrace::load_binary(path("trace.bin"));
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].server, trace[i].server);
    EXPECT_EQ(loaded[i].site, trace[i].site);
    EXPECT_EQ(loaded[i].rank, trace[i].rank);
  }
}

TEST_F(TraceIoTest, CsvRoundTrip) {
  const auto t = TestSystem::make();
  const auto trace = sample_trace(t, 500);
  trace.save_csv(path("trace.csv"));
  const auto loaded = workload::RecordedTrace::load_csv(path("trace.csv"));
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); i += 37) {
    EXPECT_EQ(loaded[i].server, trace[i].server);
    EXPECT_EQ(loaded[i].site, trace[i].site);
    EXPECT_EQ(loaded[i].rank, trace[i].rank);
  }
}

TEST_F(TraceIoTest, CorruptedBinaryIsDetected) {
  const auto t = TestSystem::make();
  const auto trace = sample_trace(t, 200);
  trace.save_binary(path("trace.bin"));
  // Flip one payload byte.
  std::fstream f(path("trace.bin"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(64);
  char byte = 0x7f;
  f.write(&byte, 1);
  f.close();
  EXPECT_THROW(workload::RecordedTrace::load_binary(path("trace.bin")),
               cdn::PreconditionError);
}

TEST_F(TraceIoTest, WrongMagicRejected) {
  std::ofstream(path("junk.bin"), std::ios::binary) << "NOTATRACE.......";
  EXPECT_THROW(workload::RecordedTrace::load_binary(path("junk.bin")),
               cdn::PreconditionError);
}

TEST_F(TraceIoTest, MissingFileRejected) {
  EXPECT_THROW(workload::RecordedTrace::load_binary(path("absent.bin")),
               cdn::PreconditionError);
}

TEST_F(TraceIoTest, ValidateCatchesOutOfRangeRecords) {
  workload::RecordedTrace trace;
  trace.append({99, 0, 1});
  EXPECT_THROW(trace.validate(4, 8, 100), cdn::PreconditionError);
  workload::RecordedTrace trace2;
  trace2.append({0, 0, 0});  // rank 0 invalid
  EXPECT_THROW(trace2.validate(4, 8, 100), cdn::PreconditionError);
}

TEST_F(TraceIoTest, ReplayIsDeterministicAcrossPolicies) {
  // The same trace replayed twice gives bit-identical reports; replayed
  // against a different policy it differs — the core "replay" use case.
  const auto t = TestSystem::make();
  const auto placement = placement::pure_caching(*t.system);
  const auto trace = sample_trace(t, 300'000);

  sim::SimulationConfig cfg;
  cfg.trace = &trace;
  const auto a = sim::simulate(*t.system, placement, cfg);
  const auto b = sim::simulate(*t.system, placement, cfg);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.total_requests, trace.size());

  cfg.policy = cache::PolicyKind::kFifo;
  const auto c = sim::simulate(*t.system, placement, cfg);
  EXPECT_NE(c.cache_hit_ratio, a.cache_hit_ratio);
}

TEST_F(TraceIoTest, ReplayMatchesLiveStreamWithSameSeed) {
  // Recording seed-42 traffic and replaying it must equal simulating with
  // the generator seeded at 42 (the simulator draws lambda from a separate
  // stream, so with lambda = 0 the runs coincide exactly).
  const auto t = TestSystem::make();
  const auto placement = placement::pure_caching(*t.system);
  const auto trace = sample_trace(t, 200'000);

  sim::SimulationConfig live;
  live.total_requests = 200'000;
  live.seed = 42;
  const auto live_report = sim::simulate(*t.system, placement, live);

  sim::SimulationConfig replay;
  replay.trace = &trace;
  replay.seed = 42;
  const auto replay_report = sim::simulate(*t.system, placement, replay);
  EXPECT_DOUBLE_EQ(replay_report.mean_latency_ms,
                   live_report.mean_latency_ms);
  EXPECT_DOUBLE_EQ(replay_report.cache_hit_ratio,
                   live_report.cache_hit_ratio);
}

TEST_F(TraceIoTest, EmptyTraceRejectedBySimulator) {
  const auto t = TestSystem::make();
  const auto placement = placement::pure_caching(*t.system);
  const workload::RecordedTrace empty;
  sim::SimulationConfig cfg;
  cfg.trace = &empty;
  EXPECT_THROW(sim::simulate(*t.system, placement, cfg),
               cdn::PreconditionError);
}

}  // namespace
