// Redirector wire protocol, endpoint map, and backoff policy unit tests.

#include "src/redirectd/protocol.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/redirectd/backoff.h"
#include "src/util/error.h"

namespace cdn::redirectd {
namespace {

using namespace std::chrono_literals;

// --- requests ---

TEST(Protocol, RequestRoundtrip) {
  RedirectRequest request{.client_server = 7, .site = 42, .object = 1234};
  const RedirectRequest parsed = parse_request(format_request(request));
  EXPECT_EQ(parsed.client_server, 7u);
  EXPECT_EQ(parsed.site, 42u);
  EXPECT_EQ(parsed.object, 1234u);
}

TEST(Protocol, RequestAcceptsCrLf) {
  const RedirectRequest parsed = parse_request("GET 1 2 3\r\n");
  EXPECT_EQ(parsed.client_server, 1u);
}

TEST(Protocol, RequestRejectsMalformedLines) {
  EXPECT_THROW(parse_request(""), PreconditionError);
  EXPECT_THROW(parse_request("PUT 1 2 3\n"), PreconditionError);
  EXPECT_THROW(parse_request("GET 1 2\n"), PreconditionError);       // truncated
  EXPECT_THROW(parse_request("GET 1 2 3 4\n"), PreconditionError);   // junk
  EXPECT_THROW(parse_request("GET -1 2 3\n"), PreconditionError);
  EXPECT_THROW(parse_request("GET 1.5 2 3\n"), PreconditionError);
  EXPECT_THROW(parse_request("GET nan 2 3\n"), PreconditionError);
  EXPECT_THROW(parse_request("GET 99999999999999999999 2 3\n"),
               PreconditionError);
}

TEST(Protocol, RequestRejectsOversizedLine) {
  std::string line = "GET 1 2 ";
  line.append(kMaxRequestLine, '9');
  line += '\n';
  EXPECT_THROW(parse_request(line), PreconditionError);
}

// --- answers ---

TEST(Protocol, ReplicaAnswerRoundtrip) {
  RedirectAnswer answer;
  answer.kind = AnswerKind::kReplica;
  answer.server = 3;
  answer.cost = 2.5;
  answer.winner_rank = 2;
  answer.attempts = 4;
  const RedirectAnswer parsed = parse_answer(format_answer(answer));
  EXPECT_EQ(parsed.kind, AnswerKind::kReplica);
  EXPECT_EQ(parsed.server, 3u);
  EXPECT_DOUBLE_EQ(parsed.cost, 2.5);
  EXPECT_EQ(parsed.winner_rank, 2u);
  EXPECT_EQ(parsed.attempts, 4u);
}

TEST(Protocol, OriginAnswerRoundtrip) {
  RedirectAnswer answer;
  answer.kind = AnswerKind::kOrigin;
  answer.site = 17;
  answer.cost = 6.0;
  answer.attempts = 1;
  const RedirectAnswer parsed = parse_answer(format_answer(answer));
  EXPECT_EQ(parsed.kind, AnswerKind::kOrigin);
  EXPECT_EQ(parsed.site, 17u);
  EXPECT_DOUBLE_EQ(parsed.cost, 6.0);
}

TEST(Protocol, UnavailableAnswerRoundtripAllReasons) {
  for (const auto reason :
       {UnavailableReason::kNoLiveCopy, UnavailableReason::kShed,
        UnavailableReason::kDeadline}) {
    RedirectAnswer answer;
    answer.kind = AnswerKind::kUnavailable;
    answer.reason = reason;
    const RedirectAnswer parsed = parse_answer(format_answer(answer));
    EXPECT_EQ(parsed.kind, AnswerKind::kUnavailable);
    EXPECT_EQ(parsed.reason, reason);
  }
}

TEST(Protocol, AnswerRejectsMalformedLines) {
  EXPECT_THROW(parse_answer("WAT 1\n"), PreconditionError);
  EXPECT_THROW(parse_answer("REPLICA 1 nan 1 1\n"), PreconditionError);
  EXPECT_THROW(parse_answer("UNAVAILABLE because\n"), PreconditionError);
  EXPECT_THROW(parse_answer("ORIGIN 1 2.0 1 junk\n"), PreconditionError);
}

// --- endpoint map ---

TEST(EndpointMapTest, ParseSerializeRoundtrip) {
  const std::string text =
      "# comment\n"
      "replica 0 127.0.0.1 9000\n"
      "replica 2 127.0.0.1 9002\n"
      "origin 1 127.0.0.1 9500\n";
  const EndpointMap map = EndpointMap::parse(text);
  ASSERT_EQ(map.replicas.size(), 3u);
  EXPECT_TRUE(map.replicas[0].has_value());
  EXPECT_FALSE(map.replicas[1].has_value());
  EXPECT_EQ(map.replicas[2]->port, 9002);
  ASSERT_EQ(map.origins.size(), 2u);
  EXPECT_EQ(map.origins[1]->host, "127.0.0.1");

  const EndpointMap again = EndpointMap::parse(map.serialize());
  EXPECT_EQ(again.serialize(), map.serialize());
}

TEST(EndpointMapTest, RejectsBadInput) {
  EXPECT_THROW(EndpointMap::parse("replica 0 127.0.0.1 nan\n"),
               PreconditionError);
  EXPECT_THROW(EndpointMap::parse("replica 0 127.0.0.1 0\n"),
               PreconditionError);
  EXPECT_THROW(EndpointMap::parse("replica 0 127.0.0.1 70000\n"),
               PreconditionError);
  EXPECT_THROW(EndpointMap::parse("replica 0 127.0.0.1\n"),
               PreconditionError);
  EXPECT_THROW(EndpointMap::parse("gateway 0 127.0.0.1 9000\n"),
               PreconditionError);
  EXPECT_THROW(EndpointMap::parse("replica 0 h 1\nreplica 0 h 2\n"),
               PreconditionError);
  EXPECT_THROW(EndpointMap::parse("replica 0 h 80 junk\n"),
               PreconditionError);
}

TEST(EndpointMapTest, ValidateChecksFleetShape) {
  const EndpointMap map =
      EndpointMap::parse("replica 5 127.0.0.1 9000\n");
  EXPECT_NO_THROW(map.validate(6, 1));
  EXPECT_THROW(map.validate(5, 1), PreconditionError);
}

TEST(EndpointMapTest, LoadMissingFileThrows) {
  EXPECT_THROW(EndpointMap::load("/nonexistent/endpoints.txt"),
               PreconditionError);
}

// --- backoff ---

TEST(BackoffTest, DelaysGrowAndRespectCap) {
  BackoffPolicy policy;
  policy.base = 20ms;
  policy.cap = 100ms;
  policy.multiplier = 2.0;
  policy.jitter = 0.2;
  Backoff backoff(policy, 42);
  for (std::uint32_t retry = 0; retry < 8; ++retry) {
    const auto delay = backoff.next(retry);
    const double unjittered =
        std::min(100.0, 20.0 * std::pow(2.0, static_cast<double>(retry)));
    EXPECT_GE(delay.count(),
              static_cast<std::int64_t>(unjittered * 0.8) - 1);
    EXPECT_LE(delay.count(),
              static_cast<std::int64_t>(unjittered * 1.2) + 1);
  }
}

TEST(BackoffTest, SameSeedSameSchedule) {
  BackoffPolicy policy;
  Backoff a(policy, 7), b(policy, 7), c(policy, 8);
  bool any_diff = false;
  for (std::uint32_t retry = 0; retry < 6; ++retry) {
    const auto da = a.next(retry);
    const auto db = b.next(retry);
    const auto dc = c.next(retry);
    EXPECT_EQ(da.count(), db.count());
    any_diff = any_diff || da != dc;
  }
  // Different seeds should diverge somewhere (jitter is per-stream).
  EXPECT_TRUE(any_diff);
}

TEST(BackoffTest, PolicyValidation) {
  BackoffPolicy bad;
  bad.cap = 1ms;
  bad.base = 10ms;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = BackoffPolicy{};
  bad.jitter = 1.5;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = BackoffPolicy{};
  bad.multiplier = 0.5;
  EXPECT_THROW(bad.validate(), PreconditionError);
}

}  // namespace
}  // namespace cdn::redirectd
