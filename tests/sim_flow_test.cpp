// Tests of the flow-level analytical engine: agreement with the event
// engine, determinism, the validate() rejections of per-request features,
// the flow-split gauges, and the SLO accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "src/fault/fault_schedule.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/placement/fixed_split.h"
#include "src/placement/hybrid_greedy.h"
#include "src/sim/sim_checkpoint.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "src/workload/request_stream.h"
#include "src/workload/trace_io.h"
#include "tests/test_support.h"

namespace {

using cdn::placement::hybrid_greedy;
using cdn::placement::pure_caching;
using cdn::sim::HitModel;
using cdn::sim::report_digest;
using cdn::sim::SimEngine;
using cdn::sim::simulate;
using cdn::sim::SimulationConfig;
using cdn::sim::StalenessMode;
using cdn::test::TestSystem;

SimulationConfig flow_config() {
  SimulationConfig cfg;
  cfg.engine = SimEngine::kFlow;
  cfg.total_requests = 1'000'000;
  cfg.seed = 17;
  return cfg;
}

TEST(FlowEngineTest, WholeRunIsMeasuredOnOneShard) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  const auto report = simulate(*t.system, placement, flow_config());
  EXPECT_EQ(report.total_requests, 1'000'000u);
  EXPECT_EQ(report.measured_requests, 1'000'000u);
  EXPECT_EQ(report.shards_used, 1u);
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_DOUBLE_EQ(report.availability, 1.0);
}

TEST(FlowEngineTest, AgreesWithTheEventEngine) {
  const auto t = TestSystem::make();
  const auto placement = hybrid_greedy(*t.system);

  SimulationConfig event_cfg;
  event_cfg.total_requests = 2'000'000;
  event_cfg.warmup_fraction = 0.3;
  event_cfg.seed = 17;
  const auto event = simulate(*t.system, placement, event_cfg);

  const auto flow = simulate(*t.system, placement, flow_config());

  // The flow engine is a model, not a replay: allow the model-vs-simulation
  // gap (the Figure 6 experiments land within ~10%).
  EXPECT_NEAR(flow.local_ratio, event.local_ratio, 0.08);
  EXPECT_NEAR(flow.cache_hit_ratio, event.cache_hit_ratio, 0.10);
  EXPECT_NEAR(flow.mean_cost_hops / event.mean_cost_hops, 1.0, 0.15);
  EXPECT_NEAR(flow.mean_latency_ms / event.mean_latency_ms, 1.0, 0.15);
}

TEST(FlowEngineTest, DeterministicAcrossRuns) {
  const auto t = TestSystem::make();
  const auto placement = hybrid_greedy(*t.system);
  for (const auto model :
       {HitModel::kEmpirical, HitModel::kClosedForm, HitModel::kChe}) {
    auto cfg = flow_config();
    cfg.hit_model = model;
    const auto a = simulate(*t.system, placement, cfg);
    const auto b = simulate(*t.system, placement, cfg);
    EXPECT_EQ(report_digest(a), report_digest(b))
        << "hit model " << static_cast<int>(model);
  }
}

TEST(FlowEngineTest, ModelTiersStayCloseToEmpirical) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  auto cfg = flow_config();
  const auto empirical = simulate(*t.system, placement, cfg);
  for (const auto model : {HitModel::kClosedForm, HitModel::kChe}) {
    cfg.hit_model = model;
    const auto tiered = simulate(*t.system, placement, cfg);
    EXPECT_GE(tiered.cache_hit_ratio, 0.0);
    EXPECT_LE(tiered.cache_hit_ratio, 1.0);
    EXPECT_GE(tiered.local_ratio, 0.0);
    EXPECT_LE(tiered.local_ratio, 1.0);
    // All three tiers approximate the same steady state.
    EXPECT_NEAR(tiered.local_ratio, empirical.local_ratio, 0.15)
        << "hit model " << static_cast<int>(model);
  }
}

TEST(FlowEngineTest, SloFractionComplementsTheLocalRatio) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  auto cfg = flow_config();
  // Every redirected request pays at least one extra hop, so an SLO just
  // above the first-hop latency is violated by exactly the non-local mass.
  cfg.slo_ms = cfg.latency.latency_ms(0.0) + 1e-6;
  const auto report = simulate(*t.system, placement, cfg);
  EXPECT_GT(report.slo_violation_fraction, 0.0);
  EXPECT_NEAR(report.slo_violation_fraction, 1.0 - report.local_ratio, 1e-9);
}

TEST(FlowEngineTest, PublishesFlowSplitGauges) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  cdn::obs::Registry metrics;
  auto cfg = flow_config();
  cfg.metrics = &metrics;
  (void)simulate(*t.system, placement, cfg);

  const auto gauge = [&](const char* name) {
    const auto* g = metrics.find_gauge(std::string("sim/") + name);
    EXPECT_NE(g, nullptr) << name;
    return g != nullptr ? g->value() : -1.0;
  };
  const double replica = gauge("flow/local_replica_share");
  const double hit = gauge("flow/cache_hit_share");
  const double origin = gauge("flow/origin_share");
  const double redirect = gauge("flow/replica_redirect_share");
  // The four ways a request can be served partition the flow mass.
  EXPECT_NEAR(replica + hit + origin + redirect, 1.0, 1e-9);
  // pure_caching replicates nothing and the catalogue is fully cacheable.
  EXPECT_DOUBLE_EQ(replica, 0.0);
  EXPECT_DOUBLE_EQ(gauge("flow/uncacheable_share"), 0.0);
  EXPECT_GT(gauge("flow/cells"), 0.0);
  EXPECT_NE(metrics.find_gauge("sim/flow/hit_model"), nullptr);
}

TEST(FlowEngineTest, ClampCounterIsPublishedForModelTiers) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  cdn::obs::Registry metrics;
  auto cfg = flow_config();
  cfg.hit_model = HitModel::kClosedForm;
  cfg.metrics = &metrics;
  (void)simulate(*t.system, placement, cfg);
  EXPECT_NE(metrics.find_counter("sim/model/curve_clamped"), nullptr);
}

TEST(FlowEngineTest, UncacheableFractionShiftsMassToRedirects) {
  auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  // The empirical tier reuses the placement's hit matrix, so the lambda
  // change must flow through a recomputing tier.
  auto cfg = flow_config();
  cfg.hit_model = HitModel::kClosedForm;
  const auto clean = simulate(*t.system, placement, cfg);
  t.catalog->set_uncacheable_fraction(0.2);
  const auto flagged = simulate(*t.system, placement, cfg);
  t.catalog->set_uncacheable_fraction(0.0);
  EXPECT_LT(flagged.local_ratio, clean.local_ratio);
  EXPECT_GT(flagged.mean_cost_hops, clean.mean_cost_hops);
}

TEST(FlowEngineTest, RejectsPerRequestFeatures) {
  const auto t = TestSystem::make();

  {
    auto cfg = flow_config();
    cdn::workload::RequestStream stream(*t.catalog, *t.demand, 17);
    const auto trace = cdn::workload::RecordedTrace::record(stream, 100);
    cfg.trace = &trace;
    EXPECT_THROW(cfg.validate(), cdn::PreconditionError);
  }
  {
    auto cfg = flow_config();
    cdn::fault::FaultSchedule faults;
    faults.add_server_outage(0, 1'000, 2'000);
    cfg.faults = &faults;
    EXPECT_THROW(cfg.validate(), cdn::PreconditionError);
    // An attached-but-empty schedule is fine (matches the event engine's
    // "empty == healthy" contract).
    cdn::fault::FaultSchedule empty;
    cfg.faults = &empty;
    EXPECT_NO_THROW(cfg.validate());
  }
  {
    auto cfg = flow_config();
    cdn::obs::TraceSink sink(1.0);
    cfg.trace_sink = &sink;
    EXPECT_THROW(cfg.validate(), cdn::PreconditionError);
  }
  {
    auto cfg = flow_config();
    cfg.checkpoint_path = "flow.ckpt";
    cfg.checkpoint_every_requests = 1'000;
    EXPECT_THROW(cfg.validate(), cdn::PreconditionError);
  }
  {
    auto cfg = flow_config();
    const std::atomic<bool> stop{false};
    cfg.checkpoint_path = "flow.ckpt";
    cfg.stop = &stop;
    EXPECT_THROW(cfg.validate(), cdn::PreconditionError);
  }
  {
    auto cfg = flow_config();
    cfg.resume_path = "flow.ckpt";
    EXPECT_THROW(cfg.validate(), cdn::PreconditionError);
  }
  {
    auto cfg = flow_config();
    cfg.stream_locality = 0.5;
    EXPECT_THROW(cfg.validate(), cdn::PreconditionError);
  }
}

}  // namespace
