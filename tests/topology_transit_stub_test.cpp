// Unit and property tests for the transit-stub topology generator.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/topology/transit_stub.h"
#include "src/util/error.h"

namespace {

using cdn::topology::generate_transit_stub;
using cdn::topology::NodeId;
using cdn::topology::place_in_stub_domains;
using cdn::topology::TransitStubParams;
using cdn::topology::TransitStubTopology;
using cdn::util::Rng;

TEST(TransitStubTest, DefaultParamsGivePaperNodeCount) {
  // 4 transit domains x 6 nodes + 24 transit nodes x 4 stubs x 16 nodes
  // = 24 + 1536 = 1560 — the paper's graph size.
  EXPECT_EQ(TransitStubParams{}.total_nodes(), 1560u);
}

TEST(TransitStubTest, GeneratedGraphIsConnected) {
  Rng rng(1);
  const auto topo = generate_transit_stub(TransitStubParams{}, rng);
  EXPECT_EQ(topo.graph.node_count(), 1560u);
  EXPECT_TRUE(topo.graph.is_connected());
}

TEST(TransitStubTest, StructuralCounts) {
  TransitStubParams p{.transit_domains = 3,
                      .transit_nodes_per_domain = 2,
                      .stub_domains_per_transit_node = 2,
                      .nodes_per_stub_domain = 5};
  Rng rng(2);
  const auto topo = generate_transit_stub(p, rng);
  EXPECT_EQ(topo.transit_nodes.size(), 6u);
  EXPECT_EQ(topo.stub_domains.size(), 12u);
  for (const auto& stub : topo.stub_domains) {
    EXPECT_EQ(stub.nodes.size(), 5u);
  }
  EXPECT_EQ(topo.graph.node_count(), p.total_nodes());
}

TEST(TransitStubTest, StubDomainsPartitionNonTransitNodes) {
  TransitStubParams p{.transit_domains = 2,
                      .transit_nodes_per_domain = 2,
                      .stub_domains_per_transit_node = 3,
                      .nodes_per_stub_domain = 4};
  Rng rng(3);
  const auto topo = generate_transit_stub(p, rng);
  std::set<NodeId> seen(topo.transit_nodes.begin(), topo.transit_nodes.end());
  for (const auto& stub : topo.stub_domains) {
    for (NodeId v : stub.nodes) {
      EXPECT_TRUE(seen.insert(v).second) << "node in two domains: " << v;
    }
  }
  EXPECT_EQ(seen.size(), p.total_nodes());
}

TEST(TransitStubTest, EveryStubDomainAttachesToItsTransitNode) {
  Rng rng(4);
  TransitStubParams p{.transit_domains = 2,
                      .transit_nodes_per_domain = 3,
                      .stub_domains_per_transit_node = 2,
                      .nodes_per_stub_domain = 6};
  const auto topo = generate_transit_stub(p, rng);
  for (const auto& stub : topo.stub_domains) {
    bool attached = false;
    for (NodeId v : stub.nodes) {
      if (topo.graph.has_edge(v, stub.transit_attachment)) {
        attached = true;
        break;
      }
    }
    EXPECT_TRUE(attached);
  }
}

TEST(TransitStubTest, DeterministicGivenRngState) {
  Rng a(5), b(5);
  const auto t1 = generate_transit_stub(TransitStubParams{}, a);
  const auto t2 = generate_transit_stub(TransitStubParams{}, b);
  EXPECT_EQ(t1.graph.edge_count(), t2.graph.edge_count());
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_EQ(t1.graph.degree(v), t2.graph.degree(v));
  }
}

TEST(TransitStubTest, ZeroExtraEdgesGivesTreeLikeDomains) {
  TransitStubParams p{.transit_domains = 1,
                      .transit_nodes_per_domain = 8,
                      .stub_domains_per_transit_node = 1,
                      .nodes_per_stub_domain = 8,
                      .transit_edge_prob = 0.0,
                      .stub_edge_prob = 0.0,
                      .extra_transit_link_prob = 0.0};
  Rng rng(6);
  const auto topo = generate_transit_stub(p, rng);
  // Pure spanning trees everywhere: edges = (8-1) transit + 8*[(8-1) stub
  // + 1 gateway] = 7 + 64 = 71; always connected.
  EXPECT_EQ(topo.graph.edge_count(), 71u);
  EXPECT_TRUE(topo.graph.is_connected());
}

TEST(TransitStubTest, RejectsInvalidParams) {
  Rng rng(7);
  TransitStubParams p;
  p.transit_domains = 0;
  EXPECT_THROW(generate_transit_stub(p, rng), cdn::PreconditionError);
  p = TransitStubParams{};
  p.stub_edge_prob = 1.5;
  EXPECT_THROW(generate_transit_stub(p, rng), cdn::PreconditionError);
}

TEST(PlacementTest, DistinctNodesAreDistinct) {
  Rng rng(8);
  const auto topo = generate_transit_stub(TransitStubParams{}, rng);
  const auto placed = place_in_stub_domains(topo, 250, rng, true);
  std::unordered_set<NodeId> unique(placed.begin(), placed.end());
  EXPECT_EQ(unique.size(), 250u);
}

TEST(PlacementTest, PlacementsAreStubNodes) {
  Rng rng(9);
  TransitStubParams p{.transit_domains = 2,
                      .transit_nodes_per_domain = 2,
                      .stub_domains_per_transit_node = 2,
                      .nodes_per_stub_domain = 8};
  const auto topo = generate_transit_stub(p, rng);
  std::unordered_set<NodeId> stub_nodes;
  for (const auto& d : topo.stub_domains) {
    stub_nodes.insert(d.nodes.begin(), d.nodes.end());
  }
  const auto placed = place_in_stub_domains(topo, 20, rng, true);
  for (NodeId v : placed) {
    EXPECT_TRUE(stub_nodes.contains(v));
  }
}

TEST(PlacementTest, NonDistinctAllowsRepeats) {
  Rng rng(10);
  TransitStubParams p{.transit_domains = 1,
                      .transit_nodes_per_domain = 1,
                      .stub_domains_per_transit_node = 1,
                      .nodes_per_stub_domain = 2};
  const auto topo = generate_transit_stub(p, rng);
  // 2 stub nodes but 10 placements: must succeed with repetition.
  const auto placed = place_in_stub_domains(topo, 10, rng, false);
  EXPECT_EQ(placed.size(), 10u);
}

TEST(PlacementTest, TooManyDistinctRequestsThrow) {
  Rng rng(11);
  TransitStubParams p{.transit_domains = 1,
                      .transit_nodes_per_domain = 1,
                      .stub_domains_per_transit_node = 1,
                      .nodes_per_stub_domain = 2};
  const auto topo = generate_transit_stub(p, rng);
  EXPECT_THROW(place_in_stub_domains(topo, 3, rng, true),
               cdn::PreconditionError);
}

// Property sweep: connectivity across generator shapes.
class TransitStubPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TransitStubPropertyTest, AlwaysConnected) {
  const auto [td, tn, sd, sn] = GetParam();
  TransitStubParams p{.transit_domains = static_cast<std::uint32_t>(td),
                      .transit_nodes_per_domain =
                          static_cast<std::uint32_t>(tn),
                      .stub_domains_per_transit_node =
                          static_cast<std::uint32_t>(sd),
                      .nodes_per_stub_domain = static_cast<std::uint32_t>(sn)};
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(seed);
    const auto topo = generate_transit_stub(p, rng);
    EXPECT_TRUE(topo.graph.is_connected())
        << "seed " << seed << " shape " << td << "/" << tn << "/" << sd << "/"
        << sn;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TransitStubPropertyTest,
                         ::testing::Values(std::tuple{1, 1, 1, 1},
                                           std::tuple{1, 4, 2, 3},
                                           std::tuple{2, 1, 1, 5},
                                           std::tuple{3, 3, 3, 3},
                                           std::tuple{5, 2, 4, 8}));

}  // namespace
