// Scenario construction on the Waxman topology model, and the topology-
// sensitivity claim: the paper's qualitative orderings should not depend on
// the random-graph family.

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/core/experiment.h"
#include "src/core/scenario.h"
#include "src/util/error.h"

namespace {

using namespace cdn;

core::ScenarioConfig waxman_config(std::uint64_t seed = 21) {
  core::ScenarioConfig cfg;
  cfg.topology_model = core::TopologyModel::kWaxman;
  cfg.waxman = {.nodes = 150, .alpha = 0.15, .beta = 0.2};
  cfg.server_count = 6;
  cfg.surge.objects_per_site = 100;
  cfg.classes = {{5, 1.0, "low"}, {3, 8.0, "high"}};
  cfg.storage_fraction = 0.1;
  cfg.seed = seed;
  return cfg;
}

TEST(WaxmanScenarioTest, BuildsWithRequestedDimensions) {
  const core::Scenario s(waxman_config());
  EXPECT_EQ(s.graph().node_count(), 150u);
  EXPECT_EQ(s.system().server_count(), 6u);
  EXPECT_EQ(s.system().site_count(), 8u);
  EXPECT_EQ(s.waxman_topology().coordinates.size(), 150u);
}

TEST(WaxmanScenarioTest, TransitStubAccessorThrows) {
  const core::Scenario s(waxman_config());
  EXPECT_THROW(s.topology(), cdn::PreconditionError);
}

TEST(WaxmanScenarioTest, TransitStubScenarioRejectsWaxmanAccessor) {
  core::ScenarioConfig cfg;
  cfg.topology = {.transit_domains = 1,
                  .transit_nodes_per_domain = 2,
                  .stub_domains_per_transit_node = 2,
                  .nodes_per_stub_domain = 6};
  cfg.server_count = 3;
  cfg.surge.objects_per_site = 50;
  cfg.classes = {{3, 1.0, "x"}};
  const core::Scenario s(cfg);
  EXPECT_THROW(s.waxman_topology(), cdn::PreconditionError);
  EXPECT_EQ(&s.graph(), &s.topology().graph);
}

TEST(WaxmanScenarioTest, PlacementsAreDistinctNodes) {
  const core::Scenario s(waxman_config());
  std::unordered_set<topology::NodeId> seen;
  for (auto v : s.server_nodes()) EXPECT_TRUE(seen.insert(v).second);
  for (auto v : s.primary_nodes()) EXPECT_TRUE(seen.insert(v).second);
}

TEST(WaxmanScenarioTest, Reproducible) {
  const core::Scenario a(waxman_config(5));
  const core::Scenario b(waxman_config(5));
  EXPECT_EQ(a.server_nodes(), b.server_nodes());
  EXPECT_DOUBLE_EQ(a.distances().server_to_primary(1, 2),
                   b.distances().server_to_primary(1, 2));
}

TEST(WaxmanScenarioTest, PaperOrderingHoldsOnWaxman) {
  // The headline result must be topology-family independent: the hybrid
  // beats pure replication on a Waxman graph too.
  const core::Scenario s(waxman_config());
  sim::SimulationConfig sim;
  sim.total_requests = 400'000;
  const auto runs = core::run_mechanisms(
      s, {core::replication_mechanism(), core::hybrid_mechanism()}, sim);
  EXPECT_LT(runs[1].report.mean_latency_ms, runs[0].report.mean_latency_ms);
}

TEST(WaxmanScenarioTest, RejectsOversubscribedPlacement) {
  auto cfg = waxman_config();
  cfg.waxman.nodes = 10;  // 6 servers + 8 primaries > 10 nodes
  EXPECT_THROW(core::Scenario{cfg}, cdn::PreconditionError);
}

}  // namespace
