// Unit tests for Eq. 1 (the per-site LRU hit ratio) and the tabulated H(z)
// evaluator.

#include <gtest/gtest.h>

#include "src/model/hit_ratio_curve.h"
#include "src/util/error.h"

namespace {

using cdn::model::HitRatioCurve;
using cdn::model::lru_hit_ratio_exact;
using cdn::model::lru_hit_ratio_exponential;
using cdn::util::ZipfDistribution;

TEST(HitRatioExactTest, ZeroPopularityOrTimeIsZero) {
  ZipfDistribution zipf(100, 1.0);
  EXPECT_DOUBLE_EQ(lru_hit_ratio_exact(zipf, 0.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(lru_hit_ratio_exact(zipf, 0.5, 0.0), 0.0);
}

TEST(HitRatioExactTest, HugeKApproachesOne) {
  ZipfDistribution zipf(100, 1.0);
  EXPECT_NEAR(lru_hit_ratio_exact(zipf, 1.0, 1e9), 1.0, 1e-6);
}

TEST(HitRatioExactTest, SingleObjectSite) {
  // L = 1: q_1 = 1, h = 1 - (1 - p)^K.
  ZipfDistribution zipf(1, 1.0);
  EXPECT_NEAR(lru_hit_ratio_exact(zipf, 0.3, 2.0),
              1.0 - 0.7 * 0.7, 1e-12);
  EXPECT_NEAR(lru_hit_ratio_exact(zipf, 1.0, 5.0), 1.0, 1e-12);
}

TEST(HitRatioExactTest, HandComputedTwoObjects) {
  // L = 2, theta = 1: q = {2/3, 1/3}; p = 0.5, K = 1:
  // h = (2/3)(1-(1-1/3)^1) + (1/3)(1-(1-1/6)^1) = (2/3)(1/3)+(1/3)(1/6).
  ZipfDistribution zipf(2, 1.0);
  const double expected = (2.0 / 3.0) * (1.0 / 3.0) + (1.0 / 3.0) / 6.0;
  EXPECT_NEAR(lru_hit_ratio_exact(zipf, 0.5, 1.0), expected, 1e-12);
}

TEST(HitRatioExactTest, MonotoneInPopularityAndK) {
  ZipfDistribution zipf(500, 1.0);
  double prev = -1.0;
  for (double p : {0.001, 0.01, 0.05, 0.2, 0.8}) {
    const double h = lru_hit_ratio_exact(zipf, p, 100.0);
    EXPECT_GT(h, prev);
    prev = h;
  }
  prev = -1.0;
  for (double k : {1.0, 10.0, 100.0, 1e4, 1e6}) {
    const double h = lru_hit_ratio_exact(zipf, 0.01, k);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(HitRatioExactTest, BoundedByOne) {
  ZipfDistribution zipf(50, 1.4);
  for (double p : {0.1, 0.5, 1.0}) {
    for (double k : {1.0, 100.0, 1e8}) {
      const double h = lru_hit_ratio_exact(zipf, p, k);
      EXPECT_GE(h, 0.0);
      EXPECT_LE(h, 1.0);
    }
  }
}

TEST(HitRatioExactTest, RejectsOutOfRangeArguments) {
  ZipfDistribution zipf(10, 1.0);
  EXPECT_THROW(lru_hit_ratio_exact(zipf, -0.1, 1.0), cdn::PreconditionError);
  EXPECT_THROW(lru_hit_ratio_exact(zipf, 1.1, 1.0), cdn::PreconditionError);
  EXPECT_THROW(lru_hit_ratio_exact(zipf, 0.5, -1.0), cdn::PreconditionError);
}

TEST(HitRatioExponentialTest, MatchesExactForSmallPq) {
  // The exponential form drops the O((pq)^2) correction; for the site
  // popularities that actually occur (p ~ 1/M scale) it must agree closely.
  ZipfDistribution zipf(1000, 1.0);
  for (double p : {0.001, 0.005, 0.02}) {
    for (double k : {100.0, 1000.0, 20000.0}) {
      const double exact = lru_hit_ratio_exact(zipf, p, k);
      const double expo = lru_hit_ratio_exponential(zipf, p * k);
      EXPECT_NEAR(expo, exact, 0.01 * std::max(exact, 1e-3))
          << "p=" << p << " K=" << k;
    }
  }
}

TEST(HitRatioCurveTest, InterpolatesCloseToDirectEvaluation) {
  ZipfDistribution zipf(1000, 1.0);
  HitRatioCurve curve(zipf);
  for (double z : {1e-3, 0.5, 3.7, 42.0, 777.0, 1e5, 4e7}) {
    EXPECT_NEAR(curve.evaluate_z(z), lru_hit_ratio_exponential(zipf, z),
                2e-3)
        << "z=" << z;
  }
}

TEST(HitRatioCurveTest, EvaluateCombinesPAndK) {
  ZipfDistribution zipf(200, 1.0);
  HitRatioCurve curve(zipf);
  EXPECT_DOUBLE_EQ(curve.evaluate(0.01, 500.0), curve.evaluate_z(5.0));
}

TEST(HitRatioCurveTest, ZeroAndClampedEnds) {
  ZipfDistribution zipf(100, 1.0);
  HitRatioCurve curve(zipf, 256, 1e-3, 1e6);
  EXPECT_DOUBLE_EQ(curve.evaluate_z(0.0), 0.0);
  // Below z_min: linear through origin, positive.
  const double tiny = curve.evaluate_z(1e-5);
  EXPECT_GT(tiny, 0.0);
  EXPECT_LT(tiny, curve.evaluate_z(1e-3));
  // Above z_max: clamped.
  EXPECT_DOUBLE_EQ(curve.evaluate_z(1e9), curve.evaluate_z(1e6));
}

TEST(HitRatioCurveTest, MonotoneInZ) {
  ZipfDistribution zipf(300, 0.8);
  HitRatioCurve curve(zipf);
  double prev = -1.0;
  for (double z = 1e-4; z < 1e8; z *= 3.0) {
    const double h = curve.evaluate_z(z);
    EXPECT_GE(h, prev);
    prev = h;
  }
}

TEST(HitRatioCurveTest, ClampCounterTracksSaturatedEvaluations) {
  ZipfDistribution zipf(100, 0.9);
  const HitRatioCurve curve(zipf, 64, 1e-3, 1e3);
  EXPECT_EQ(curve.clamped_evaluations(), 0u);
  curve.evaluate_z(0.5);     // interior: no clamp
  curve.evaluate_z(1e-5);    // below z_min: linear extrapolation, no clamp
  EXPECT_EQ(curve.clamped_evaluations(), 0u);
  curve.evaluate_z(1e3);     // exactly z_max clamps (z >= z_max branch)
  curve.evaluate_z(5e6);
  EXPECT_EQ(curve.clamped_evaluations(), 2u);

  // Copies share the table but start with a fresh counter.
  const HitRatioCurve copy(curve);
  EXPECT_EQ(copy.clamped_evaluations(), 0u);
  EXPECT_EQ(curve.clamped_evaluations(), 2u);
  copy.evaluate_z(1e9);
  EXPECT_EQ(copy.clamped_evaluations(), 1u);
  EXPECT_EQ(curve.clamped_evaluations(), 2u);
}

TEST(HitRatioCurveTest, RejectsBadGrid) {
  ZipfDistribution zipf(10, 1.0);
  EXPECT_THROW(HitRatioCurve(zipf, 1), cdn::PreconditionError);
  EXPECT_THROW(HitRatioCurve(zipf, 16, 0.0, 1.0), cdn::PreconditionError);
  EXPECT_THROW(HitRatioCurve(zipf, 16, 2.0, 1.0), cdn::PreconditionError);
}

// End-to-end accuracy of the fast path used inside the greedy: table +
// exponential approximation vs exact Eq. 1, across the realistic operating
// range of the paper's experiments.
class FastPathAccuracyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FastPathAccuracyTest, TableVsExact) {
  static const ZipfDistribution zipf(1000, 1.0);
  static const HitRatioCurve curve(zipf);
  const auto [p, k] = GetParam();
  const double exact = lru_hit_ratio_exact(zipf, p, k);
  const double fast = curve.evaluate(p, k);
  // Absolute error bound of 0.01 in hit ratio (the paper's own table had
  // granularity-limited accuracy too).
  EXPECT_NEAR(fast, exact, 0.01) << "p=" << p << " K=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    OperatingRange, FastPathAccuracyTest,
    ::testing::Combine(::testing::Values(1e-4, 1e-3, 5e-3, 0.02, 0.05),
                       ::testing::Values(10.0, 100.0, 1e3, 1e4, 1e5)));

}  // namespace
