// Unit tests for end-to-end scenario construction and the experiment layer.

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/core/experiment.h"
#include "src/core/scenario.h"
#include "src/util/error.h"

namespace {

using cdn::core::Scenario;
using cdn::core::ScenarioConfig;

ScenarioConfig tiny_config(std::uint64_t seed = 3) {
  ScenarioConfig cfg;
  cfg.topology = {.transit_domains = 2,
                  .transit_nodes_per_domain = 2,
                  .stub_domains_per_transit_node = 2,
                  .nodes_per_stub_domain = 8};
  cfg.server_count = 5;
  cfg.surge.objects_per_site = 100;
  cfg.classes = {{4, 1.0, "low"}, {2, 8.0, "high"}};
  cfg.storage_fraction = 0.1;
  cfg.seed = seed;
  return cfg;
}

TEST(ScenarioTest, DimensionsMatchConfig) {
  const Scenario s(tiny_config());
  EXPECT_EQ(s.system().server_count(), 5u);
  EXPECT_EQ(s.system().site_count(), 6u);
  EXPECT_EQ(s.server_nodes().size(), 5u);
  EXPECT_EQ(s.primary_nodes().size(), 6u);
  EXPECT_EQ(s.topology().graph.node_count(),
            tiny_config().topology.total_nodes());
}

TEST(ScenarioTest, ServersAndPrimariesOnDistinctNodes) {
  const Scenario s(tiny_config());
  std::unordered_set<cdn::topology::NodeId> nodes;
  for (auto v : s.server_nodes()) EXPECT_TRUE(nodes.insert(v).second);
  for (auto v : s.primary_nodes()) EXPECT_TRUE(nodes.insert(v).second);
}

TEST(ScenarioTest, StorageIsFractionOfTotalBytes) {
  const Scenario s(tiny_config());
  const auto expected = static_cast<std::uint64_t>(
      0.1 * static_cast<double>(s.catalog().total_bytes()));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(s.system().server_storage(static_cast<cdn::sys::ServerIndex>(i)),
              expected);
  }
}

TEST(ScenarioTest, UncacheableFractionPropagates) {
  auto cfg = tiny_config();
  cfg.uncacheable_fraction = 0.25;
  const Scenario s(cfg);
  for (cdn::workload::SiteId j = 0; j < s.catalog().site_count(); ++j) {
    EXPECT_DOUBLE_EQ(s.catalog().uncacheable_fraction(j), 0.25);
  }
}

TEST(ScenarioTest, SameSeedReproduces) {
  const Scenario a(tiny_config(9));
  const Scenario b(tiny_config(9));
  EXPECT_EQ(a.server_nodes(), b.server_nodes());
  EXPECT_EQ(a.primary_nodes(), b.primary_nodes());
  EXPECT_EQ(a.catalog().total_bytes(), b.catalog().total_bytes());
  EXPECT_DOUBLE_EQ(a.demand().requests(0, 0), b.demand().requests(0, 0));
  EXPECT_DOUBLE_EQ(a.distances().server_to_primary(2, 3),
                   b.distances().server_to_primary(2, 3));
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  const Scenario a(tiny_config(1));
  const Scenario b(tiny_config(2));
  EXPECT_NE(a.server_nodes(), b.server_nodes());
}

TEST(ScenarioTest, DistancesAreFiniteAndSymmetricOnServers) {
  const Scenario s(tiny_config());
  for (cdn::sys::ServerIndex i = 0; i < 5; ++i) {
    for (cdn::sys::ServerIndex k = 0; k < 5; ++k) {
      const double c = s.distances().server_to_server(i, k);
      EXPECT_GE(c, 0.0);
      EXPECT_LT(c, 100.0);
      EXPECT_DOUBLE_EQ(c, s.distances().server_to_server(k, i));
    }
  }
}

TEST(ExperimentTest, MechanismSpecsProduceNamedResults) {
  const Scenario s(tiny_config());
  cdn::sim::SimulationConfig sim;
  sim.total_requests = 100'000;
  const auto runs = cdn::core::run_mechanisms(
      s,
      {cdn::core::replication_mechanism(), cdn::core::caching_mechanism(),
       cdn::core::hybrid_mechanism(),
       cdn::core::fixed_split_mechanism(0.2),
       cdn::core::popularity_mechanism(), cdn::core::random_mechanism(1)},
      sim);
  ASSERT_EQ(runs.size(), 6u);
  EXPECT_EQ(runs[0].name, "replication");
  EXPECT_EQ(runs[3].name, "cache20%");
  for (const auto& run : runs) {
    EXPECT_GT(run.report.mean_latency_ms, 0.0) << run.name;
  }
}

TEST(ExperimentTest, GainHelperSigns) {
  const Scenario s(tiny_config());
  cdn::sim::SimulationConfig sim;
  sim.total_requests = 100'000;
  const auto runs = cdn::core::run_mechanisms(
      s, {cdn::core::replication_mechanism(), cdn::core::hybrid_mechanism()},
      sim);
  const double gain = cdn::core::mean_latency_gain_percent(runs[0], runs[1]);
  // Hybrid should not be slower than replication by any notable margin.
  EXPECT_GT(gain, -5.0);
  // And self-gain is zero.
  EXPECT_DOUBLE_EQ(cdn::core::mean_latency_gain_percent(runs[0], runs[0]),
                   0.0);
}

TEST(ExperimentTest, CdfTableRendersAllRuns) {
  const Scenario s(tiny_config());
  cdn::sim::SimulationConfig sim;
  sim.total_requests = 50'000;
  const auto runs = cdn::core::run_mechanisms(
      s, {cdn::core::caching_mechanism(), cdn::core::hybrid_mechanism()},
      sim);
  const auto table = cdn::core::cdf_table(runs, 10);
  EXPECT_NE(table.find("caching"), std::string::npos);
  EXPECT_NE(table.find("hybrid"), std::string::npos);
}

TEST(ScenarioTest, RejectsZeroServers) {
  auto cfg = tiny_config();
  cfg.server_count = 0;
  EXPECT_THROW(Scenario{cfg}, cdn::PreconditionError);
}

}  // namespace
