// WallClockTimeline: pure (epoch, rate, now) -> request-time mapping and
// fault replay.  All time points are synthetic — no sleeps, no clock reads.

#include "src/fault/wall_clock.h"

#include <gtest/gtest.h>

#include <chrono>

#include "src/util/error.h"

namespace cdn::fault {
namespace {

using Clock = WallClockTimeline::Clock;
using namespace std::chrono_literals;

FaultSchedule make_schedule() {
  return FaultSchedule::parse(
      "server 1 down 100 200\n"
      "origin 0 down 50 150\n");
}

TEST(WallClockTimeline, MapsWallTimeToRequestTime) {
  const Clock::time_point epoch = Clock::now();
  WallClockTimeline wall(make_schedule(), 4, 2, 100.0, epoch);
  EXPECT_EQ(wall.request_time(epoch), 0u);
  EXPECT_EQ(wall.request_time(epoch - 5s), 0u);  // pre-epoch clamps to 0
  EXPECT_EQ(wall.request_time(epoch + 1s), 100u);
  EXPECT_EQ(wall.request_time(epoch + 2500ms), 250u);
  EXPECT_EQ(wall.request_time(epoch + 999ms), 99u);  // floor, not round
}

TEST(WallClockTimeline, ReplaysFaultsAtTheConfiguredRate) {
  const Clock::time_point epoch = Clock::now();
  WallClockTimeline wall(make_schedule(), 4, 2, 100.0, epoch);

  wall.advance_to(epoch);  // t = 0: everything up except nothing yet
  EXPECT_TRUE(wall.server_up(1));
  EXPECT_TRUE(wall.origin_up(0));

  wall.advance_to(epoch + 600ms);  // t = 60: origin outage [50, 150) active
  EXPECT_TRUE(wall.server_up(1));
  EXPECT_FALSE(wall.origin_up(0));

  wall.advance_to(epoch + 1200ms);  // t = 120: both outages active
  EXPECT_FALSE(wall.server_up(1));
  EXPECT_FALSE(wall.origin_up(0));
  EXPECT_EQ(wall.server_up_mask()[1], 0);
  EXPECT_EQ(wall.server_up_mask()[0], 1);

  wall.advance_to(epoch + 1700ms);  // t = 170: origin recovered
  EXPECT_FALSE(wall.server_up(1));
  EXPECT_TRUE(wall.origin_up(0));

  const bool changed = wall.advance_to(epoch + 2500ms);  // t = 250: all up
  EXPECT_TRUE(changed);
  EXPECT_TRUE(wall.server_up(1));
  EXPECT_FALSE(wall.advance_to(epoch + 3s));  // no further transitions
}

TEST(WallClockTimeline, RateScalesTheReplay) {
  const Clock::time_point epoch = Clock::now();
  // At 10 req/s the same schedule stretches 10x in wall time.
  WallClockTimeline wall(make_schedule(), 4, 2, 10.0, epoch);
  wall.advance_to(epoch + 1s);  // t = 10: nothing yet
  EXPECT_TRUE(wall.origin_up(0));
  wall.advance_to(epoch + 6s);  // t = 60: origin outage active
  EXPECT_FALSE(wall.origin_up(0));
}

TEST(WallClockTimeline, RejectsNonPositiveRate) {
  EXPECT_THROW(WallClockTimeline(make_schedule(), 4, 2, 0.0), PreconditionError);
  EXPECT_THROW(WallClockTimeline(make_schedule(), 4, 2, -1.0),
               PreconditionError);
}

TEST(WallClockTimeline, ExposesEpochAndRate) {
  const Clock::time_point epoch = Clock::now();
  WallClockTimeline wall(make_schedule(), 4, 2, 250.0, epoch);
  EXPECT_EQ(wall.epoch(), epoch);
  EXPECT_DOUBLE_EQ(wall.requests_per_second(), 250.0);
}

}  // namespace
}  // namespace cdn::fault
