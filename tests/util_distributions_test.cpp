// Unit tests for the continuous distributions behind the SURGE workload.

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/distributions.h"
#include "src/util/stats.h"

namespace {

using cdn::util::BoundedPareto;
using cdn::util::Lognormal;
using cdn::util::NormalSampler;
using cdn::util::Rng;
using cdn::util::RunningStats;
using cdn::util::TruncatedNormal;

TEST(NormalSamplerTest, MeanAndStddevConverge) {
  Rng rng(1);
  NormalSampler normal;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(normal.sample(rng, 3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.03);
}

TEST(NormalSamplerTest, RejectsNegativeStddev) {
  Rng rng(2);
  NormalSampler normal;
  EXPECT_THROW(normal.sample(rng, 0.0, -1.0), cdn::PreconditionError);
}

TEST(NormalSamplerTest, ZeroStddevIsDegenerate) {
  Rng rng(3);
  NormalSampler normal;
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(normal.sample(rng, 5.0, 0.0), 5.0);
  }
}

TEST(TruncatedNormalTest, SamplesStayInBounds) {
  // The paper's site-popularity distribution: N(1/N, 1/4N) on mu +/- 3sigma.
  const double n = 50.0;
  const double mu = 1.0 / n;
  const double sigma = 1.0 / (4.0 * n);
  TruncatedNormal dist(mu, sigma, mu - 3 * sigma, mu + 3 * sigma);
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, mu - 3 * sigma);
    EXPECT_LE(x, mu + 3 * sigma);
  }
}

TEST(TruncatedNormalTest, MeanUnaffectedBySymmetricTruncation) {
  TruncatedNormal dist(10.0, 2.0, 4.0, 16.0);
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(dist.sample(rng));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
}

TEST(TruncatedNormalTest, RejectsEmptyInterval) {
  EXPECT_THROW(TruncatedNormal(0.0, 1.0, 2.0, 1.0), cdn::PreconditionError);
}

TEST(TruncatedNormalTest, RejectsNegligibleMassInterval) {
  EXPECT_THROW(TruncatedNormal(0.0, 1.0, 50.0, 60.0), cdn::PreconditionError);
}

TEST(LognormalTest, MeanMatchesClosedForm) {
  Lognormal dist(2.0, 0.5);
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 300000; ++i) stats.add(dist.sample(rng));
  EXPECT_NEAR(stats.mean() / dist.mean(), 1.0, 0.02);
}

TEST(LognormalTest, SamplesArePositive) {
  Lognormal dist(9.357, 1.318);  // SURGE body parameters
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(dist.sample(rng), 0.0);
  }
}

TEST(LognormalTest, MedianIsExpMu) {
  Lognormal dist(3.0, 1.0);
  Rng rng(8);
  int below = 0;
  const int n = 100000;
  const double median = std::exp(3.0);
  for (int i = 0; i < n; ++i) {
    if (dist.sample(rng) < median) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(BoundedParetoTest, SamplesStayInBounds) {
  BoundedPareto dist(1.1, 133e3, 50e6);  // SURGE tail parameters
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, 133e3);
    EXPECT_LE(x, 50e6);
  }
}

TEST(BoundedParetoTest, MeanMatchesClosedForm) {
  BoundedPareto dist(1.5, 1.0, 1000.0);
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 500000; ++i) stats.add(dist.sample(rng));
  EXPECT_NEAR(stats.mean() / dist.mean(), 1.0, 0.02);
}

TEST(BoundedParetoTest, Alpha1MeanClosedForm) {
  // alpha == 1 takes the logarithmic branch of mean().
  BoundedPareto dist(1.0, 1.0, 100.0);
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 500000; ++i) stats.add(dist.sample(rng));
  EXPECT_NEAR(stats.mean() / dist.mean(), 1.0, 0.02);
}

TEST(BoundedParetoTest, HeavierShapeGivesSmallerMean) {
  // Larger alpha concentrates mass near the minimum.
  BoundedPareto light(0.8, 1.0, 1e6);
  BoundedPareto heavy(2.5, 1.0, 1e6);
  EXPECT_GT(light.mean(), heavy.mean());
}

TEST(BoundedParetoTest, RejectsBadParameters) {
  EXPECT_THROW(BoundedPareto(0.0, 1.0, 2.0), cdn::PreconditionError);
  EXPECT_THROW(BoundedPareto(1.0, -1.0, 2.0), cdn::PreconditionError);
  EXPECT_THROW(BoundedPareto(1.0, 3.0, 2.0), cdn::PreconditionError);
}

}  // namespace
