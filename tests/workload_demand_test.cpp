// Unit tests for the demand matrix r_j^(i).

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/workload/demand.h"

namespace {

using cdn::util::Rng;
using cdn::workload::DemandMatrix;
using cdn::workload::PopularityClass;
using cdn::workload::SiteCatalog;
using cdn::workload::SurgeParams;

SiteCatalog catalog_with_classes() {
  SurgeParams params;
  params.objects_per_site = 20;
  const std::vector<PopularityClass> classes{{4, 1.0, "low"},
                                             {2, 10.0, "high"}};
  Rng rng(1);
  return SiteCatalog::generate(params, classes, rng);
}

TEST(DemandMatrixTest, TotalsAddUp) {
  const auto catalog = catalog_with_classes();
  Rng rng(2);
  const auto dm = DemandMatrix::generate(catalog, 10, 1e6, rng);
  EXPECT_EQ(dm.server_count(), 10u);
  EXPECT_EQ(dm.site_count(), 6u);
  EXPECT_NEAR(dm.total(), 1e6, 1e-6);
  double rows = 0.0, cols = 0.0;
  for (std::size_t i = 0; i < 10; ++i) rows += dm.server_total(static_cast<cdn::workload::ServerId>(i));
  for (std::size_t j = 0; j < 6; ++j) cols += dm.site_total(static_cast<cdn::workload::SiteId>(j));
  EXPECT_NEAR(rows, 1e6, 1e-6);
  EXPECT_NEAR(cols, 1e6, 1e-6);
}

TEST(DemandMatrixTest, SiteVolumesFollowClassWeights) {
  const auto catalog = catalog_with_classes();
  Rng rng(3);
  const auto dm = DemandMatrix::generate(catalog, 8, 1e6, rng);
  // Class weights 1:10 over 4+2 sites -> each low site gets 1e6/24, each
  // high site 1e7/24 (exact: the truncated normal only splits a site's
  // volume across servers).
  for (cdn::workload::SiteId j = 0; j < 4; ++j) {
    EXPECT_NEAR(dm.site_total(j), 1e6 / 24.0, 1e-6);
  }
  for (cdn::workload::SiteId j = 4; j < 6; ++j) {
    EXPECT_NEAR(dm.site_total(j), 1e7 / 24.0, 1e-6);
  }
}

TEST(DemandMatrixTest, ServerSharesAreBalancedWithinTruncation) {
  // Shares come from N(1/N, 1/4N) truncated to mu +/- 3sigma and are then
  // normalised: every server's share of a site lies in a band around 1/N.
  const auto catalog = catalog_with_classes();
  Rng rng(4);
  const std::size_t n = 20;
  const auto dm = DemandMatrix::generate(catalog, n, 1e6, rng);
  for (cdn::workload::SiteId j = 0; j < dm.site_count(); ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const double share =
          dm.requests(static_cast<cdn::workload::ServerId>(i), j) /
          dm.site_total(j);
      // mu = 0.05, sigma = 0.0125, raw range [0.0125, 0.0875]; allow slack
      // for the post-truncation normalisation.
      EXPECT_GT(share, 0.005);
      EXPECT_LT(share, 0.12);
    }
  }
}

TEST(DemandMatrixTest, SitePopularitySumsToOnePerServer) {
  const auto catalog = catalog_with_classes();
  Rng rng(5);
  const auto dm = DemandMatrix::generate(catalog, 5, 1e5, rng);
  for (std::size_t i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (cdn::workload::SiteId j = 0; j < dm.site_count(); ++j) {
      sum += dm.site_popularity(static_cast<cdn::workload::ServerId>(i), j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DemandMatrixTest, RowViewMatchesRequests) {
  const auto catalog = catalog_with_classes();
  Rng rng(6);
  const auto dm = DemandMatrix::generate(catalog, 4, 1e5, rng);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto row = dm.row(static_cast<cdn::workload::ServerId>(i));
    ASSERT_EQ(row.size(), dm.site_count());
    for (cdn::workload::SiteId j = 0; j < dm.site_count(); ++j) {
      EXPECT_DOUBLE_EQ(row[j],
                       dm.requests(static_cast<cdn::workload::ServerId>(i), j));
    }
  }
}

TEST(DemandMatrixTest, FromValuesRoundTrips) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const auto dm = DemandMatrix::from_values(2, 3, values);
  EXPECT_DOUBLE_EQ(dm.requests(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(dm.requests(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(dm.server_total(0), 6.0);
  EXPECT_DOUBLE_EQ(dm.server_total(1), 15.0);
  EXPECT_DOUBLE_EQ(dm.site_total(1), 7.0);
  EXPECT_DOUBLE_EQ(dm.total(), 21.0);
}

TEST(DemandMatrixTest, ZeroRowGivesZeroPopularity) {
  const std::vector<double> values{0.0, 0.0, 1.0, 1.0};
  const auto dm = DemandMatrix::from_values(2, 2, values);
  EXPECT_DOUBLE_EQ(dm.site_popularity(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(dm.site_popularity(1, 0), 0.5);
}

TEST(DemandMatrixTest, RejectsInvalidInput) {
  const auto catalog = catalog_with_classes();
  Rng rng(7);
  EXPECT_THROW(DemandMatrix::generate(catalog, 0, 1e6, rng),
               cdn::PreconditionError);
  EXPECT_THROW(DemandMatrix::generate(catalog, 4, 0.0, rng),
               cdn::PreconditionError);
  EXPECT_THROW(DemandMatrix::from_values(2, 2, std::vector<double>{1.0}),
               cdn::PreconditionError);
  EXPECT_THROW(
      DemandMatrix::from_values(1, 2, std::vector<double>{1.0, -2.0}),
      cdn::PreconditionError);
  const auto dm = DemandMatrix::from_values(1, 1, std::vector<double>{1.0});
  EXPECT_THROW(dm.requests(1, 0), cdn::PreconditionError);
  EXPECT_THROW(dm.requests(0, 1), cdn::PreconditionError);
}

}  // namespace
