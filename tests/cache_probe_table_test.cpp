// Tests of the open-addressed ProbeTable (the cache policies' hit-path
// index) and the arena-backed SlotList it pairs with: unit coverage of the
// tricky paths (backward-shift deletion, growth, sentinel-free keys) plus a
// randomized differential test against std::unordered_map.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cache/probe_table.h"
#include "src/cache/slot_list.h"
#include "src/util/rng.h"

namespace {

using cdn::cache::ProbeTable;
using cdn::cache::SlotList;

TEST(ProbeTableTest, EmptyTableFindsNothing) {
  ProbeTable table;
  EXPECT_EQ(table.find(0), ProbeTable::kNil);
  EXPECT_EQ(table.find(42), ProbeTable::kNil);
  EXPECT_FALSE(table.contains(42));
  EXPECT_FALSE(table.erase(42));
  EXPECT_EQ(table.size(), 0u);
}

TEST(ProbeTableTest, InsertFindErase) {
  ProbeTable table;
  table.insert(7, 100);
  table.insert(9, 200);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(7), 100u);
  EXPECT_EQ(table.find(9), 200u);
  EXPECT_EQ(table.find(8), ProbeTable::kNil);
  EXPECT_TRUE(table.erase(7));
  EXPECT_FALSE(table.erase(7));
  EXPECT_EQ(table.find(7), ProbeTable::kNil);
  EXPECT_EQ(table.find(9), 200u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ProbeTableTest, AnyKeyValueIsValid) {
  // Emptiness is tracked on the value side, so extreme keys (0, all-ones)
  // must behave like any other key.
  ProbeTable table;
  table.insert(0, 1);
  table.insert(~std::uint64_t{0}, 2);
  EXPECT_EQ(table.find(0), 1u);
  EXPECT_EQ(table.find(~std::uint64_t{0}), 2u);
  EXPECT_TRUE(table.erase(0));
  EXPECT_EQ(table.find(~std::uint64_t{0}), 2u);
}

TEST(ProbeTableTest, GrowthPreservesEntries) {
  ProbeTable table;
  constexpr std::uint64_t kCount = 10'000;  // forces many doublings
  for (std::uint64_t k = 0; k < kCount; ++k) {
    table.insert(k * 0x10001, static_cast<std::uint32_t>(k));
  }
  EXPECT_EQ(table.size(), kCount);
  for (std::uint64_t k = 0; k < kCount; ++k) {
    EXPECT_EQ(table.find(k * 0x10001), static_cast<std::uint32_t>(k));
  }
}

TEST(ProbeTableTest, ReserveAvoidsNothingButStaysCorrect) {
  ProbeTable reserved;
  reserved.reserve(1000);
  ProbeTable organic;
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    reserved.insert(k, static_cast<std::uint32_t>(k));
    organic.insert(k, static_cast<std::uint32_t>(k));
  }
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    EXPECT_EQ(reserved.find(k), organic.find(k));
  }
}

TEST(ProbeTableTest, ClearEmptiesButKeepsWorking) {
  ProbeTable table;
  for (std::uint64_t k = 0; k < 100; ++k) table.insert(k, 1);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find(5), ProbeTable::kNil);
  table.insert(5, 50);
  EXPECT_EQ(table.find(5), 50u);
}

TEST(ProbeTableTest, DifferentialFuzzAgainstUnorderedMap) {
  // Narrow key range => long probe chains => the backward-shift deletion
  // path runs constantly.  Every operation's result must match the STL map.
  ProbeTable table;
  std::unordered_map<std::uint64_t, std::uint32_t> reference;
  cdn::util::Rng rng(2024);
  for (int op = 0; op < 200'000; ++op) {
    const std::uint64_t key = rng.uniform_index(512);
    const auto action = rng.uniform_index(3);
    if (action == 0) {
      if (!reference.contains(key)) {
        const auto slot = static_cast<std::uint32_t>(op);
        table.insert(key, slot);
        reference.emplace(key, slot);
      }
    } else if (action == 1) {
      EXPECT_EQ(table.erase(key), reference.erase(key) > 0) << "key " << key;
    } else {
      const auto it = reference.find(key);
      EXPECT_EQ(table.find(key),
                it == reference.end() ? ProbeTable::kNil : it->second)
          << "key " << key;
    }
    ASSERT_EQ(table.size(), reference.size());
  }
  for (const auto& [key, slot] : reference) {
    EXPECT_EQ(table.find(key), slot);
  }
}

struct TestNode {
  int payload;
  std::uint32_t prev;
  std::uint32_t next;
};

std::vector<int> forward_payloads(const SlotList<TestNode>& list) {
  std::vector<int> out;
  for (std::uint32_t s = list.head(); s != SlotList<TestNode>::kNil;
       s = list[s].next) {
    out.push_back(list[s].payload);
  }
  return out;
}

TEST(SlotListTest, PushUnlinkAndMoveToFront) {
  SlotList<TestNode> list;
  const auto a = list.alloc({1, 0, 0});
  const auto b = list.alloc({2, 0, 0});
  const auto c = list.alloc({3, 0, 0});
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(forward_payloads(list), (std::vector<int>{1, 2, 3}));

  list.move_to_front(c);
  EXPECT_EQ(forward_payloads(list), (std::vector<int>{3, 1, 2}));
  list.move_to_front(c);  // already at head: no-op
  EXPECT_EQ(forward_payloads(list), (std::vector<int>{3, 1, 2}));

  list.remove(a);
  EXPECT_EQ(forward_payloads(list), (std::vector<int>{3, 2}));
  EXPECT_EQ(list.size(), 2u);

  // Freed slot is recycled before the arena grows.
  const auto d = list.alloc({4, 0, 0});
  EXPECT_EQ(d, a);
  list.insert_before(d, list.head());
  EXPECT_EQ(forward_payloads(list), (std::vector<int>{4, 3, 2}));
  EXPECT_EQ(list.tail(), b);
}

TEST(SlotListTest, InsertBeforeNilAppends) {
  SlotList<TestNode> list;
  const auto a = list.alloc({1, 0, 0});
  list.insert_before(a, SlotList<TestNode>::kNil);
  const auto b = list.alloc({2, 0, 0});
  list.insert_before(b, SlotList<TestNode>::kNil);
  EXPECT_EQ(forward_payloads(list), (std::vector<int>{1, 2}));
  EXPECT_EQ(list.head(), a);
  EXPECT_EQ(list.tail(), b);
}

}  // namespace
