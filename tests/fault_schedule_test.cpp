// Unit tests for the fault schedule and its timeline stepper.

#include <gtest/gtest.h>

#include "src/fault/fault_schedule.h"
#include "src/util/error.h"

namespace {

using cdn::fault::FaultSchedule;
using cdn::fault::FaultTimeline;
using cdn::fault::RandomFaultParams;
using cdn::PreconditionError;

TEST(FaultScheduleTest, EmptyByDefault) {
  FaultSchedule s;
  EXPECT_TRUE(s.empty());
  s.add_server_outage(0, 10, 20);
  EXPECT_FALSE(s.empty());
}

TEST(FaultScheduleTest, RejectsDegenerateIntervals) {
  FaultSchedule s;
  EXPECT_THROW(s.add_server_outage(0, 20, 20), PreconditionError);
  EXPECT_THROW(s.add_server_outage(0, 20, 10), PreconditionError);
  EXPECT_THROW(s.add_link_degradation(0, 0, 10, 0.5), PreconditionError);
  EXPECT_THROW(s.add_demand_surge(0, 0, 10, 0.0), PreconditionError);
}

TEST(FaultScheduleTest, ValidateChecksTargets) {
  FaultSchedule s;
  s.add_server_outage(3, 0, 10);
  s.add_origin_outage(5, 0, 10);
  EXPECT_NO_THROW(s.validate(4, 6));
  EXPECT_THROW(s.validate(3, 6), PreconditionError);  // server 3 >= n
  EXPECT_THROW(s.validate(4, 5), PreconditionError);  // site 5 >= m
}

TEST(FaultScheduleTest, ParseSerializeRoundtrip) {
  FaultSchedule s;
  s.add_server_outage(1, 100, 200);
  s.add_origin_outage(2, 50, 60);
  s.add_link_degradation(0, 10, 90, 3.5);
  s.add_demand_surge(4, 0, 1000, 20.0);
  const FaultSchedule back = FaultSchedule::parse(s.serialize());
  EXPECT_EQ(back.serialize(), s.serialize());
  ASSERT_EQ(back.server_outages().size(), 1u);
  EXPECT_EQ(back.server_outages()[0].begin, 100u);
  ASSERT_EQ(back.link_degradations().size(), 1u);
  EXPECT_DOUBLE_EQ(back.link_degradations()[0].latency_multiplier, 3.5);
}

TEST(FaultScheduleTest, ParseAcceptsCommentsAndBlankLines) {
  const auto s = FaultSchedule::parse(
      "# drill\n\nserver 0 down 10 20\nsurge 1 0 100 8\n");
  EXPECT_EQ(s.server_outages().size(), 1u);
  EXPECT_EQ(s.demand_surges().size(), 1u);
}

TEST(FaultScheduleTest, ParseRejectsGarbage) {
  EXPECT_THROW(FaultSchedule::parse("server 0 sideways 1 2"),
               PreconditionError);
  EXPECT_THROW(FaultSchedule::parse("frobnicate 1 2 3"), PreconditionError);
  EXPECT_THROW(FaultSchedule::parse("server 0 down 5"), PreconditionError);
}

TEST(FaultScheduleTest, RandomIsDeterministicAndClamped) {
  RandomFaultParams p;
  p.mtbf_requests = 5'000;
  p.mttr_requests = 1'000;
  p.seed = 9;
  const auto a = FaultSchedule::random(6, 10, 100'000, p);
  const auto b = FaultSchedule::random(6, 10, 100'000, p);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_FALSE(a.empty());
  for (const auto& o : a.server_outages()) {
    EXPECT_LT(o.begin, o.end);
    EXPECT_LE(o.end, 100'000u);
    EXPECT_LT(o.target, 6u);
  }
  EXPECT_TRUE(a.origin_outages().empty());  // origin_mtbf_scale = 0

  RandomFaultParams q = p;
  q.seed = 10;
  EXPECT_NE(FaultSchedule::random(6, 10, 100'000, q).serialize(),
            a.serialize());
}

TEST(FaultTimelineTest, HealthyWithoutFaults) {
  FaultSchedule s;
  FaultTimeline t(s, 3, 4);
  EXPECT_FALSE(t.advance(1'000'000));
  EXPECT_TRUE(t.server_up(0));
  EXPECT_TRUE(t.origin_up(3));
  EXPECT_FALSE(t.any_server_down());
  EXPECT_DOUBLE_EQ(t.max_demand_multiplier(), 1.0);
  EXPECT_EQ(t.transitions(), 0u);
}

TEST(FaultTimelineTest, StepsThroughAnOutage) {
  FaultSchedule s;
  s.add_server_outage(1, 10, 20);
  FaultTimeline t(s, 3, 2);
  EXPECT_FALSE(t.advance(9));
  EXPECT_TRUE(t.server_up(1));
  EXPECT_TRUE(t.advance(10));
  EXPECT_FALSE(t.server_up(1));
  EXPECT_EQ(t.server_up_mask()[1], 0);
  EXPECT_TRUE(t.any_server_down());
  EXPECT_FALSE(t.advance(19));
  EXPECT_TRUE(t.advance(20));
  EXPECT_TRUE(t.server_up(1));
  ASSERT_EQ(t.just_recovered().size(), 1u);
  EXPECT_EQ(t.just_recovered()[0], 1u);
  // just_recovered is refreshed (emptied) on the next advance.
  t.advance(21);
  EXPECT_TRUE(t.just_recovered().empty());
  EXPECT_EQ(t.transitions(), 2u);
}

TEST(FaultTimelineTest, OverlappingOutagesUseDepth) {
  FaultSchedule s;
  s.add_server_outage(0, 10, 30);
  s.add_server_outage(0, 20, 40);
  FaultTimeline t(s, 1, 1);
  t.advance(25);
  EXPECT_FALSE(t.server_up(0));
  t.advance(30);  // first interval ends, second still active
  EXPECT_FALSE(t.server_up(0));
  EXPECT_TRUE(t.just_recovered().empty());
  t.advance(40);
  EXPECT_TRUE(t.server_up(0));
  EXPECT_EQ(t.just_recovered().size(), 1u);
}

TEST(FaultTimelineTest, BackToBackOutageRecoversOnce) {
  // An outage ending exactly when another begins must keep the server
  // down with no spurious cold restart (ends sort before begins).
  FaultSchedule s;
  s.add_server_outage(0, 10, 20);
  s.add_server_outage(0, 20, 30);
  FaultTimeline t(s, 1, 1);
  t.advance(20);
  EXPECT_FALSE(t.server_up(0));
  EXPECT_TRUE(t.just_recovered().empty());
  t.advance(30);
  EXPECT_TRUE(t.server_up(0));
  EXPECT_EQ(t.just_recovered().size(), 1u);
}

TEST(FaultTimelineTest, MultipliersComposeAndReset) {
  FaultSchedule s;
  s.add_link_degradation(0, 10, 30, 2.0);
  s.add_link_degradation(0, 20, 40, 3.0);
  s.add_demand_surge(1, 10, 20, 8.0);
  FaultTimeline t(s, 2, 3);
  t.advance(15);
  EXPECT_DOUBLE_EQ(t.latency_multiplier(0), 2.0);
  EXPECT_DOUBLE_EQ(t.latency_multiplier(1), 1.0);
  EXPECT_DOUBLE_EQ(t.demand_multiplier(1), 8.0);
  EXPECT_DOUBLE_EQ(t.max_demand_multiplier(), 8.0);
  EXPECT_TRUE(t.any_surge_active());
  t.advance(25);
  EXPECT_DOUBLE_EQ(t.latency_multiplier(0), 6.0);  // overlap multiplies
  EXPECT_DOUBLE_EQ(t.max_demand_multiplier(), 1.0);
  EXPECT_FALSE(t.any_surge_active());
  t.advance(40);
  EXPECT_DOUBLE_EQ(t.latency_multiplier(0), 1.0);
  EXPECT_EQ(t.transitions(), 6u);
}

TEST(FaultTimelineTest, OriginOutagesAreIndependentOfServers) {
  FaultSchedule s;
  s.add_origin_outage(2, 5, 15);
  FaultTimeline t(s, 4, 3);
  t.advance(10);
  EXPECT_FALSE(t.origin_up(2));
  EXPECT_TRUE(t.origin_up(0));
  EXPECT_TRUE(t.server_up(2));
  EXPECT_FALSE(t.any_server_down());
  t.advance(15);
  EXPECT_TRUE(t.origin_up(2));
  // Origin recoveries are not server cold restarts.
  EXPECT_TRUE(t.just_recovered().empty());
}

}  // namespace
