// Behavioural tests distinguishing FIFO, LFU, CLOCK and delayed-LRU from
// plain LRU, plus factory round-trips.

#include <gtest/gtest.h>

#include "src/cache/cache_factory.h"
#include "src/cache/clock_cache.h"
#include "src/cache/delayed_lru_cache.h"
#include "src/cache/fifo_cache.h"
#include "src/cache/lfu_cache.h"
#include "src/cache/lru_cache.h"
#include "src/util/error.h"

namespace {

using namespace cdn::cache;

TEST(FifoCacheTest, HitDoesNotRefreshPosition) {
  FifoCache cache(30);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.admit(3, 10);
  EXPECT_TRUE(cache.lookup(1));  // FIFO: no recency effect
  cache.admit(4, 10);            // evicts 1 anyway (oldest admission)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(FifoCacheTest, EvictsInAdmissionOrder) {
  FifoCache cache(20);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.admit(3, 10);  // evicts 1
  cache.admit(4, 10);  // evicts 2
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LfuCacheTest, EvictsLowestFrequency) {
  LfuCache cache(30);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.admit(3, 10);
  cache.lookup(1);  // freq(1)=2
  cache.lookup(1);  // freq(1)=3
  cache.lookup(3);  // freq(3)=2
  cache.admit(4, 10);  // evicts 2 (freq 1)
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LfuCacheTest, TiesBreakLeastRecent) {
  LfuCache cache(30);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.admit(3, 10);
  cache.lookup(1);     // 1 most recently touched within freq bucket... then
  cache.lookup(2);     // bump both 1 and 2 to freq 2; 3 stays freq 1
  cache.admit(4, 10);  // evicts 3 (lowest freq)
  EXPECT_FALSE(cache.contains(3));
}

TEST(LfuCacheTest, FrequencyAccessor) {
  LfuCache cache(30);
  cache.admit(1, 10);
  EXPECT_EQ(cache.frequency(1), 1u);
  cache.lookup(1);
  cache.lookup(1);
  EXPECT_EQ(cache.frequency(1), 3u);
  EXPECT_EQ(cache.frequency(99), 0u);
}

TEST(LfuCacheTest, FrequencyResetsOnReAdmission) {
  // "In-cache" LFU: eviction wipes the count.
  LfuCache cache(10);
  cache.admit(1, 10);
  cache.lookup(1);
  cache.lookup(1);
  cache.admit(2, 10);  // evicts 1 despite high frequency? No: 2 can't fit
                       // without evicting the only (and highest-freq) entry.
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  cache.admit(1, 10);  // re-admitted: frequency starts over at 1
  EXPECT_EQ(cache.frequency(1), 1u);
}

TEST(ClockCacheTest, SecondChanceProtectsReferenced) {
  ClockCache cache(30);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.admit(3, 10);
  cache.lookup(1);     // sets 1's reference bit
  cache.admit(4, 10);  // hand clears 1's bit, evicts 2 or 3 (unreferenced)
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.object_count(), 3u);
}

TEST(ClockCacheTest, AllReferencedDegradesToSweep) {
  ClockCache cache(20);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.lookup(1);
  cache.lookup(2);
  cache.admit(3, 10);  // full sweep clears all bits, then evicts someone
  EXPECT_EQ(cache.object_count(), 2u);
  EXPECT_TRUE(cache.contains(3));
}

TEST(ClockCacheTest, EraseHandSafety) {
  ClockCache cache(30);
  cache.admit(1, 10);
  cache.admit(2, 10);
  cache.admit(3, 10);
  EXPECT_TRUE(cache.erase(2));
  cache.admit(4, 10);
  cache.admit(5, 10);  // forces eviction with hand having moved
  EXPECT_EQ(cache.object_count(), 3u);
  cache.clear();
  EXPECT_EQ(cache.object_count(), 0u);
  cache.admit(7, 10);
  EXPECT_TRUE(cache.contains(7));
}

TEST(DelayedLruTest, AdmitsOnlyAfterThresholdMisses) {
  DelayedLruCache cache(100, /*admission_threshold=*/2);
  EXPECT_FALSE(cache.access(1, 10));  // 1st miss: counted, not admitted
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.access(1, 10));  // 2nd miss: admitted
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.access(1, 10));   // now a hit
}

TEST(DelayedLruTest, ThresholdOneIsPlainLru) {
  DelayedLruCache cache(100, 1);
  EXPECT_FALSE(cache.access(1, 10));
  EXPECT_TRUE(cache.contains(1));
}

TEST(DelayedLruTest, OneHitWondersStayOut) {
  DelayedLruCache delayed(40, 2);
  // Stream of unique keys: none is ever admitted, cache stays empty.
  for (ObjectKey k = 0; k < 100; ++k) delayed.access(k, 10);
  EXPECT_EQ(delayed.object_count(), 0u);
}

TEST(DelayedLruTest, GhostDirectoryIsBounded) {
  DelayedLruCache cache(100, 3, /*ghost_entries=*/8);
  for (ObjectKey k = 0; k < 100; ++k) cache.access(k, 10);
  EXPECT_LE(cache.ghost_size(), 8u);
}

TEST(DelayedLruTest, GhostEvictionForgetsCounts) {
  DelayedLruCache cache(100, 2, /*ghost_entries=*/2);
  cache.access(1, 10);  // ghost: {1:1}
  cache.access(2, 10);  // ghost: {2:1, 1:1}
  cache.access(3, 10);  // ghost full: drops 1
  cache.access(1, 10);  // counts as first miss again
  EXPECT_FALSE(cache.contains(1));
}

TEST(CacheFactoryTest, NamesRoundTrip) {
  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kLfu,
        PolicyKind::kClock, PolicyKind::kDelayedLru}) {
    EXPECT_EQ(parse_policy(policy_name(kind)), kind);
  }
  EXPECT_THROW(parse_policy("bogus"), cdn::PreconditionError);
}

TEST(CacheFactoryTest, MakesWorkingCaches) {
  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kLfu,
        PolicyKind::kClock, PolicyKind::kDelayedLru}) {
    auto cache = make_cache(kind, 100);
    ASSERT_NE(cache, nullptr) << policy_name(kind);
    EXPECT_EQ(cache->capacity_bytes(), 100u);
    cache->access(1, 10);
    cache->access(1, 10);
    // delayed-lru needs a second miss before admission; all others hit.
    if (kind != PolicyKind::kDelayedLru) {
      EXPECT_TRUE(cache->contains(1)) << policy_name(kind);
    }
  }
}

}  // namespace
