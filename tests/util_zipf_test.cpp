// Unit and property tests for the Zipf-like distribution and alias sampler.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace {

using cdn::util::AliasSampler;
using cdn::util::Rng;
using cdn::util::ZipfDistribution;

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(1000, 1.0);
  double sum = 0.0;
  for (std::size_t k = 1; k <= zipf.size(); ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTest, PmfIsDecreasing) {
  ZipfDistribution zipf(500, 0.8);
  for (std::size_t k = 2; k <= zipf.size(); ++k) {
    EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1));
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, ClassicZipfRatios) {
  // theta = 1: pmf(k) = pmf(1) / k.
  ZipfDistribution zipf(100, 1.0);
  for (std::size_t k : {2, 5, 50}) {
    EXPECT_NEAR(zipf.pmf(k), zipf.pmf(1) / static_cast<double>(k), 1e-12);
  }
}

TEST(ZipfTest, AlphaIsInverseHarmonicSum) {
  const std::size_t L = 200;
  const double theta = 1.0;
  ZipfDistribution zipf(L, theta);
  double harmonic = 0.0;
  for (std::size_t k = 1; k <= L; ++k) {
    harmonic += std::pow(static_cast<double>(k), -theta);
  }
  EXPECT_NEAR(zipf.alpha(), 1.0 / harmonic, 1e-12);
}

TEST(ZipfTest, CdfIsMonotoneEndsAtOne) {
  ZipfDistribution zipf(128, 1.2);
  double prev = 0.0;
  for (std::size_t k = 1; k <= zipf.size(); ++k) {
    EXPECT_GE(zipf.cdf(k), prev);
    prev = zipf.cdf(k);
  }
  EXPECT_DOUBLE_EQ(zipf.cdf(zipf.size()), 1.0);
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfDistribution zipf(50, 1.0);
  Rng rng(3);
  std::vector<int> counts(51, 0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k : {1, 2, 10, 50}) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.005)
        << "rank " << k;
  }
}

TEST(ZipfTest, SingleRankAlwaysSamplesOne) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
  EXPECT_DOUBLE_EQ(zipf.pmf(1), 1.0);
}

TEST(ZipfTest, RejectsInvalidParameters) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), cdn::PreconditionError);
  EXPECT_THROW(ZipfDistribution(10, -0.1), cdn::PreconditionError);
  ZipfDistribution zipf(10, 1.0);
  EXPECT_THROW(zipf.pmf(0), cdn::PreconditionError);
  EXPECT_THROW(zipf.pmf(11), cdn::PreconditionError);
}

// Property sweep: normalisation and monotonicity across (L, theta).
class ZipfPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(ZipfPropertyTest, NormalisedAndMonotone) {
  const auto [size, theta] = GetParam();
  ZipfDistribution zipf(size, theta);
  double sum = 0.0;
  for (std::size_t k = 1; k <= size; ++k) {
    sum += zipf.pmf(k);
    if (k > 1) {
      EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 10, 1000, 20000),
                       ::testing::Values(0.0, 0.4, 0.8, 1.0, 1.4)));

TEST(AliasSamplerTest, MatchesWeights) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  Rng rng(5);
  std::vector<int> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, weights[i] / 10.0, 0.005);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  const std::vector<double> weights{0.0, 1.0, 0.0, 1.0};
  AliasSampler sampler(weights);
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const auto s = sampler.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleOutcome) {
  const std::vector<double> weights{5.0};
  AliasSampler sampler(weights);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(AliasSamplerTest, ProbabilityAccessorNormalises) {
  const std::vector<double> weights{2.0, 6.0};
  AliasSampler sampler(weights);
  EXPECT_DOUBLE_EQ(sampler.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.probability(1), 0.75);
}

TEST(AliasSamplerTest, RejectsInvalidWeights) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), cdn::PreconditionError);
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0, 0.0}),
               cdn::PreconditionError);
  EXPECT_THROW(AliasSampler(std::vector<double>{1.0, -1.0}),
               cdn::PreconditionError);
}

TEST(AliasSamplerTest, LargeSkewedTable) {
  // Zipf-shaped weights over 10k outcomes: head frequency must match.
  std::vector<double> weights(10000);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  AliasSampler sampler(weights);
  Rng rng(8);
  int head = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (sampler.sample(rng) == 0) ++head;
  }
  EXPECT_NEAR(static_cast<double>(head) / n, sampler.probability(0), 0.005);
}

}  // namespace
