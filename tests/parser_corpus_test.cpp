// Malformed-input corpus: every file under tests/data/corpus/ is an
// adversarial input (truncated, NaN/Inf, negative/overflowing numbers,
// wrong field counts, corrupted checksums, allocation bombs) and its
// loader — selected by filename prefix — must reject it with a clean
// PreconditionError: never a crash, a hang, an InternalError or a foreign
// exception type.  Runs under the sanitizer CI job.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <typeinfo>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/placement/placement_io.h"
#include "src/recover/checkpoint.h"
#include "src/redirectd/control.h"
#include "src/redirectd/protocol.h"
#include "src/util/error.h"
#include "src/workload/trace_io.h"
#include "tests/test_support.h"

namespace {

using namespace cdn;

std::filesystem::path corpus_dir() {
  return std::filesystem::path(HYBRIDCDN_TEST_DATA_DIR) / "corpus";
}

std::vector<std::filesystem::path> corpus_files(const char* prefix) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir())) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

template <typename Loader>
void expect_all_rejected(const char* prefix, std::size_t at_least,
                         Loader&& load) {
  const auto files = corpus_files(prefix);
  ASSERT_GE(files.size(), at_least)
      << "corpus lost its '" << prefix << "' files";
  for (const auto& file : files) {
    try {
      load(file.string());
      ADD_FAILURE() << file.filename() << " was accepted";
    } catch (const PreconditionError& e) {
      EXPECT_NE(e.what(), nullptr) << file.filename();
    } catch (const std::exception& e) {
      ADD_FAILURE() << file.filename() << " threw "
                    << typeid(e).name() << " (" << e.what()
                    << ") instead of PreconditionError";
    }
  }
}

TEST(ParserCorpusTest, CorpusIsPresentAndSubstantial) {
  std::size_t count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir())) {
    (void)entry;
    ++count;
  }
  EXPECT_GE(count, 30u);
}

TEST(ParserCorpusTest, FaultScheduleFilesAllRejected) {
  expect_all_rejected("fs_", 15, [](const std::string& p) {
    (void)fault::FaultSchedule::load(p);
  });
}

TEST(ParserCorpusTest, CsvTraceFilesAllRejected) {
  expect_all_rejected("tr_", 9, [](const std::string& p) {
    (void)workload::RecordedTrace::load_csv(p);
  });
}

TEST(ParserCorpusTest, BinaryTraceFilesAllRejected) {
  expect_all_rejected("tb_", 7, [](const std::string& p) {
    (void)workload::RecordedTrace::load_binary(p);
  });
}

TEST(ParserCorpusTest, CheckpointFilesAllRejected) {
  expect_all_rejected("ck_", 8, [](const std::string& p) {
    (void)recover::read_file(p);
  });
}

TEST(ParserCorpusTest, RedirectRequestFilesAllRejected) {
  // Each rp_ file holds one adversarial redirector request line (truncated,
  // bad verb, negative/float/NaN/overflowing numbers, oversized line).
  expect_all_rejected("rp_", 9, [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::string line((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    (void)redirectd::parse_request(line);
  });
}

TEST(ParserCorpusTest, EndpointMapFilesAllRejected) {
  expect_all_rejected("rd_", 10, [](const std::string& p) {
    (void)redirectd::EndpointMap::load(p);
  });
}

TEST(ParserCorpusTest, ReloadPlacementFilesAllRejected) {
  // Each rc_placement_ file is a hot-reload placement input (truncated,
  // out-of-range indices, duplicates, wrong shape, empty) that must leave
  // the daemon's previous generation serving — i.e. throw cleanly here.
  const test::TestSystem t = test::TestSystem::make();
  expect_all_rejected("rc_placement_", 6, [&](const std::string& p) {
    (void)placement::load_placement_result(p, *t.system);
  });
}

TEST(ParserCorpusTest, ReloadEndpointFilesAllRejected) {
  const test::TestSystem t = test::TestSystem::make();
  expect_all_rejected("rc_endpoints_", 1, [&](const std::string& p) {
    redirectd::EndpointMap map = redirectd::EndpointMap::load(p);
    map.validate(t.system->server_count(), t.system->site_count());
  });
}

TEST(ParserCorpusTest, ControlCommandFilesAllRejected) {
  expect_all_rejected("rc_control_", 5, [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::string line((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    (void)redirectd::parse_control_command(line);
  });
}

TEST(ParserCorpusTest, PlacementErrorsCarryLineAndColumn) {
  const test::TestSystem t = test::TestSystem::make();
  try {
    (void)placement::parse_placement_result("placement 4 8\nreplica 0 nope\n",
                                            *t.system);
    FAIL() << "bad site index accepted";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("col 11"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'nope'"), std::string::npos) << msg;
  }
}

TEST(ParserCorpusTest, RedirectErrorsCarryLineAndColumn) {
  try {
    redirectd::parse_request("GET 1 2 nan\n");
    FAIL() << "NaN object accepted";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("col 9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'nan'"), std::string::npos) << msg;
  }
}

TEST(ParserCorpusTest, FaultErrorsCarryLineAndColumn) {
  // Spot-check the diagnostics, not just the exception type.
  try {
    fault::FaultSchedule::parse("server 0 down 5 10\nsurge 1 5 10 nan\n");
    FAIL() << "NaN multiplier accepted";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("col 14"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'nan'"), std::string::npos) << msg;
  }
  try {
    fault::FaultSchedule::parse("link 3 degrade 5");
    FAIL() << "short line accepted";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line ended"), std::string::npos) << msg;
  }
}

TEST(ParserCorpusTest, CsvErrorsCarryLineAndColumn) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto p = dir / ("hybridcdn_csv_diag_" + std::to_string(::getpid()));
  {
    std::ofstream out(p);
    out << "server,site,rank\n0,1,2\n3,-4,5\n";
  }
  try {
    workload::RecordedTrace::load_csv(p.string());
    FAIL() << "negative field accepted";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("col 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'-4'"), std::string::npos) << msg;
  }
  std::filesystem::remove(p);
}

}  // namespace
