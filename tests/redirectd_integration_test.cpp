// Real-socket integration tests for the redirector daemon: connection
// racing against faulty replicas, retry/backoff, load shedding, graceful
// drain, and the wall-clock fault timeline.  Every test is bounded — mock
// delays are tens to hundreds of milliseconds and every read has a
// timeout, so a hung daemon fails fast instead of wedging the suite.

#include "src/redirectd/daemon.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <csignal>
#include <chrono>
#include <optional>
#include <thread>

#include "mock_replica.h"
#include "src/placement/fixed_split.h"
#include "src/redirectd/health.h"
#include "test_support.h"

namespace cdn::redirectd {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

/// Builds the shared fixture: 4 servers on a line (cost |i-k|), primaries
/// 6 hops away, site 0 replicated at servers 1 and 2 — so from server 0
/// the candidate ranking for site 0 is [server 1 (cost 1), server 2
/// (cost 2), origin (cost 6)].
struct Fixture {
  test::TestSystem t;
  placement::PlacementResult placement;

  Fixture()
      : t(test::TestSystem::make(4, 6, 2, 100, 0.9)),
        placement(placement::pure_caching(*t.system)) {
    placement.placement.add(1, 0);
    placement.placement.add(2, 0);
    placement.nearest.rebuild(placement.placement);
  }
};

/// Runs a daemon's event loop on its own thread; joins on scope exit.
class DaemonRunner {
 public:
  explicit DaemonRunner(RedirectorDaemon& daemon) : daemon_(daemon) {
    daemon_.start();
    thread_ = std::thread([this] { daemon_.run(); });
  }
  ~DaemonRunner() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      daemon_.request_stop();
      thread_.join();
    }
  }

 private:
  RedirectorDaemon& daemon_;
  std::thread thread_;
};

net::Fd connect_client(std::uint16_t port) {
  net::ConnectStart conn = net::start_connect("127.0.0.1", port);
  EXPECT_TRUE(conn.fd.valid());
  return std::move(conn.fd);
}

/// One request/response exchange with a hard timeout.
std::optional<RedirectAnswer> rpc(int fd, std::uint32_t server,
                                  std::uint32_t site, std::uint64_t object,
                                  int timeout_ms = 5000) {
  const std::string req = format_request({server, site, object});
  if (!net::write_all(fd, req.data(), req.size(), timeout_ms)) {
    return std::nullopt;
  }
  const auto line = net::read_line(fd, timeout_ms);
  if (!line.has_value()) return std::nullopt;
  return parse_answer(*line);
}

DaemonConfig base_config(Fixture& fx) {
  DaemonConfig config;
  config.system = fx.t.system.get();
  config.placement = &fx.placement;
  config.top_k = 3;
  // Keep the prober from interfering with racing tests: thresholds no
  // real test run can reach.
  config.health.down_after = 1000;
  return config;
}

// ---------------------------------------------------------------------------
// Model mode (no endpoints): answers come straight from the live ranking.

TEST(RedirectorDaemon, ModelModeAnswersFromRanking) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  // Site 0 from server 0: replica at server 1 is the cheapest live copy.
  const auto a = rpc(client.get(), 0, 0, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnswerKind::kReplica);
  EXPECT_EQ(a->server, 1u);
  EXPECT_DOUBLE_EQ(a->cost, 1.0);
  // An unreplicated site falls back to its origin.
  const auto b = rpc(client.get(), 0, 3, 1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->kind, AnswerKind::kOrigin);
  EXPECT_EQ(b->site, 3u);
  EXPECT_DOUBLE_EQ(b->cost, 6.0);
}

TEST(RedirectorDaemon, PipelinedRequestsAnswerInOrder) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  std::string block;
  for (std::uint32_t site = 0; site < 4; ++site) {
    block += format_request({0, site, 1});
  }
  ASSERT_TRUE(net::write_all(client.get(), block.data(), block.size(), 3000));
  for (std::uint32_t site = 0; site < 4; ++site) {
    const auto line = net::read_line(client.get(), 5000);
    ASSERT_TRUE(line.has_value()) << "missing answer for site " << site;
    const RedirectAnswer answer = parse_answer(*line);
    if (site == 0) {
      EXPECT_EQ(answer.kind, AnswerKind::kReplica);
    } else {
      EXPECT_EQ(answer.kind, AnswerKind::kOrigin);
      EXPECT_EQ(answer.site, site);
    }
  }
}

TEST(RedirectorDaemon, MalformedLinesGetErrAndDoNotKillTheSession) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  const std::string bad = "FETCH 0 0 1\n";
  ASSERT_TRUE(net::write_all(client.get(), bad.data(), bad.size(), 3000));
  const auto err = net::read_line(client.get(), 5000);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->rfind("ERR", 0), 0u);

  // The same session still answers real requests afterwards.
  const auto a = rpc(client.get(), 0, 0, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnswerKind::kReplica);

  runner.stop();
  EXPECT_EQ(daemon.stats().parse_errors, 1u);
}

TEST(RedirectorDaemon, OversizedRequestLineClosesTheSession) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  const std::string flood(kMaxRequestLine + 64, 'a');  // no newline at all
  ASSERT_TRUE(net::write_all(client.get(), flood.data(), flood.size(), 3000));
  const auto line = net::read_line(client.get(), 5000);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->rfind("ERR", 0), 0u);
  // The daemon closes the connection after the rejection.
  EXPECT_FALSE(net::read_line(client.get(), 2000).has_value());
}

TEST(RedirectorDaemon, OversizedLineFromResettingClientDoesNotCrash) {
  // Regression: the ERR write for an oversized line can fail immediately
  // (ECONNRESET/EPIPE) when the flooding client resets the connection,
  // tearing the session down mid-handler; the daemon then must not touch
  // the freed session.  RST timing is racy, so several clients take the
  // shot — with the bug present this trips ASan or corrupts the daemon.
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  const std::string flood(kMaxRequestLine + 64, 'a');  // no newline
  for (int i = 0; i < 20; ++i) {
    net::Fd client = connect_client(daemon.port());
    ASSERT_TRUE(
        net::write_all(client.get(), flood.data(), flood.size(), 3000));
    const linger hard{1, 0};  // RST on close instead of FIN
    ASSERT_EQ(::setsockopt(client.get(), SOL_SOCKET, SO_LINGER, &hard,
                           sizeof(hard)),
              0);
  }

  // The daemon survives and keeps serving new sessions.
  net::Fd fresh = connect_client(daemon.port());
  const auto a = rpc(fresh.get(), 0, 0, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnswerKind::kReplica);
}

// ---------------------------------------------------------------------------
// Wall-clock fault timeline gating (model mode).

TEST(RedirectorDaemon, TimelineMasksKillCandidatesAndMapToUnavailable) {
  Fixture fx;
  // Both holders and site 0's origin are down for the first million
  // request-times; site 1+ origins are unaffected.
  const fault::FaultSchedule schedule = fault::FaultSchedule::parse(
      "server 1 down 0 1000000\n"
      "server 2 down 0 1000000\n"
      "origin 0 down 0 1000000\n");
  // Epoch in the past => the outage window is active right now, and at
  // 1000 req/s it stays active for ~1000 seconds — forever, test-wise.
  fault::WallClockTimeline timeline(
      schedule, fx.t.system->server_count(), fx.t.system->site_count(),
      1000.0, fault::WallClockTimeline::Clock::now() - 1s);

  DaemonConfig config = base_config(fx);
  config.timeline = &timeline;
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  const auto a = rpc(client.get(), 0, 0, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnswerKind::kUnavailable);
  EXPECT_EQ(a->reason, UnavailableReason::kNoLiveCopy);

  // Other sites' origins are up: requests still get served.
  const auto b = rpc(client.get(), 0, 1, 1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->kind, AnswerKind::kOrigin);

  runner.stop();
  EXPECT_EQ(daemon.stats().unavailable_no_live_copy, 1u);
}

// ---------------------------------------------------------------------------
// Racing mode: real sockets against mock replicas.

TEST(RedirectorDaemon, ForcedClosePrimaryLosesRaceToRankTwo) {
  Fixture fx;
  test::MockReplica dead(test::MockReplica::Mode::kForcedClose);
  test::MockReplica live(test::MockReplica::Mode::kNormal);

  EndpointMap endpoints;
  endpoints.replicas.resize(3);
  endpoints.replicas[1] = Endpoint{"127.0.0.1", dead.port()};
  endpoints.replicas[2] = Endpoint{"127.0.0.1", live.port()};

  DaemonConfig config = base_config(fx);
  config.endpoints = &endpoints;
  config.race.stagger = 50ms;
  config.race.attempt_timeout = 500ms;
  config.race.overall_deadline = 3000ms;
  config.race.max_retry_rounds = 2;
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  const auto start = Clock::now();
  const auto a = rpc(client.get(), 0, 0, 1);
  const auto elapsed = Clock::now() - start;
  ASSERT_TRUE(a.has_value());
  // Rank 1 (server 1) was forced-closed, so rank 2 (server 2) answers.
  EXPECT_EQ(a->kind, AnswerKind::kReplica);
  EXPECT_EQ(a->server, 2u);
  EXPECT_EQ(a->winner_rank, 2u);
  EXPECT_GE(a->attempts, 2u);
  // The EOF promotes rank 2 immediately — no retry round, no deadline.
  EXPECT_LT(elapsed, 3s);

  runner.stop();
  EXPECT_EQ(daemon.stats().races, 1u);
  EXPECT_EQ(daemon.stats().replica_answers, 1u);
}

TEST(RedirectorDaemon, BlackHoleTimesOutWithinDeadline) {
  Fixture fx;
  test::MockReplica hole(test::MockReplica::Mode::kBlackHole);

  EndpointMap endpoints;
  endpoints.replicas.resize(2);
  endpoints.replicas[1] = Endpoint{"127.0.0.1", hole.port()};

  DaemonConfig config = base_config(fx);
  config.endpoints = &endpoints;
  config.top_k = 1;  // only the black-holed rank-1 candidate
  config.race.stagger = 10ms;
  config.race.attempt_timeout = 150ms;
  config.race.overall_deadline = 2000ms;
  config.race.max_retry_rounds = 1;
  config.race.backoff.base = 30ms;
  config.race.backoff.cap = 60ms;
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  const auto start = Clock::now();
  const auto a = rpc(client.get(), 0, 0, 1);
  const auto elapsed = Clock::now() - start;
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnswerKind::kUnavailable);
  EXPECT_EQ(a->reason, UnavailableReason::kDeadline);
  // At least one full attempt timeout elapsed, but the configured
  // deadline bounded the whole request.
  EXPECT_GE(elapsed, 150ms);
  EXPECT_LT(elapsed, 2500ms);

  runner.stop();
  EXPECT_GE(daemon.stats().retries, 1u);
  EXPECT_EQ(daemon.stats().unavailable_deadline, 1u);
}

TEST(RedirectorDaemon, BlackHoledRankOneIsOutracedByRankTwo) {
  Fixture fx;
  test::MockReplica hole(test::MockReplica::Mode::kBlackHole);
  test::MockReplica live(test::MockReplica::Mode::kNormal);

  EndpointMap endpoints;
  endpoints.replicas.resize(3);
  endpoints.replicas[1] = Endpoint{"127.0.0.1", hole.port()};
  endpoints.replicas[2] = Endpoint{"127.0.0.1", live.port()};

  DaemonConfig config = base_config(fx);
  config.endpoints = &endpoints;
  config.race.stagger = 40ms;  // rank 2 starts 40ms in, wins
  config.race.attempt_timeout = 1000ms;
  config.race.overall_deadline = 4000ms;
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  const auto start = Clock::now();
  const auto a = rpc(client.get(), 0, 0, 1);
  const auto elapsed = Clock::now() - start;
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnswerKind::kReplica);
  EXPECT_EQ(a->server, 2u);
  EXPECT_EQ(a->winner_rank, 2u);
  // The win comes via the stagger, far sooner than the attempt timeout.
  EXPECT_LT(elapsed, 1s);
  runner.stop();
}

TEST(RedirectorDaemon, ListenDelayIsWonByRetryWithBackoff) {
  Fixture fx;
  test::MockReplica late(test::MockReplica::Mode::kListenDelay, 250ms);

  EndpointMap endpoints;
  endpoints.replicas.resize(2);
  endpoints.replicas[1] = Endpoint{"127.0.0.1", late.port()};

  DaemonConfig config = base_config(fx);
  config.endpoints = &endpoints;
  config.top_k = 1;
  config.race.stagger = 10ms;
  config.race.attempt_timeout = 150ms;
  config.race.overall_deadline = 5000ms;
  config.race.max_retry_rounds = 8;
  config.race.backoff.base = 50ms;
  config.race.backoff.cap = 100ms;
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd client = connect_client(daemon.port());
  const auto a = rpc(client.get(), 0, 0, 1, 8000);
  ASSERT_TRUE(a.has_value());
  // Early rounds are refused (nothing listens yet); backoff retries win
  // once the listener appears.
  EXPECT_EQ(a->kind, AnswerKind::kReplica);
  EXPECT_EQ(a->server, 1u);
  EXPECT_GE(a->attempts, 2u);

  runner.stop();
  EXPECT_GE(daemon.stats().retries, 1u);
}

TEST(RedirectorDaemon, ShedsAboveTheInflightLimit) {
  Fixture fx;
  test::MockReplica slow(test::MockReplica::Mode::kSlowGreet, 300ms);

  EndpointMap endpoints;
  endpoints.replicas.resize(2);
  endpoints.replicas[1] = Endpoint{"127.0.0.1", slow.port()};

  DaemonConfig config = base_config(fx);
  config.endpoints = &endpoints;
  config.top_k = 1;
  config.max_inflight_races = 1;
  config.race.attempt_timeout = 2000ms;
  config.race.overall_deadline = 4000ms;
  RedirectorDaemon daemon(config);
  DaemonRunner runner(daemon);

  net::Fd first = connect_client(daemon.port());
  net::Fd second = connect_client(daemon.port());
  const std::string req = format_request({0, 0, 1});
  ASSERT_TRUE(net::write_all(first.get(), req.data(), req.size(), 3000));
  // Give the first race a moment to occupy the only slot.
  std::this_thread::sleep_for(80ms);
  ASSERT_TRUE(net::write_all(second.get(), req.data(), req.size(), 3000));

  // The second request is shed immediately, long before the slow greet.
  const auto shed_line = net::read_line(second.get(), 3000);
  ASSERT_TRUE(shed_line.has_value());
  const RedirectAnswer shed = parse_answer(*shed_line);
  EXPECT_EQ(shed.kind, AnswerKind::kUnavailable);
  EXPECT_EQ(shed.reason, UnavailableReason::kShed);

  // The first request still completes once the replica greets.
  const auto won_line = net::read_line(first.get(), 5000);
  ASSERT_TRUE(won_line.has_value());
  EXPECT_EQ(parse_answer(*won_line).kind, AnswerKind::kReplica);

  runner.stop();
  EXPECT_EQ(daemon.stats().unavailable_shed, 1u);
}

// ---------------------------------------------------------------------------
// Graceful drain.

TEST(RedirectorDaemon, DrainFinishesInflightRequestsThenCloses) {
  Fixture fx;
  test::MockReplica slow(test::MockReplica::Mode::kSlowGreet, 200ms);

  EndpointMap endpoints;
  endpoints.replicas.resize(2);
  endpoints.replicas[1] = Endpoint{"127.0.0.1", slow.port()};

  DaemonConfig config = base_config(fx);
  config.endpoints = &endpoints;
  config.top_k = 1;
  config.race.attempt_timeout = 2000ms;
  config.race.overall_deadline = 4000ms;
  config.drain_timeout = 5000ms;
  RedirectorDaemon daemon(config);
  const std::uint16_t port = [&] {
    DaemonRunner runner(daemon);
    net::Fd client = connect_client(daemon.port());
    const std::string req = format_request({0, 0, 1});
    EXPECT_TRUE(net::write_all(client.get(), req.data(), req.size(), 3000));
    std::this_thread::sleep_for(50ms);  // the race is now in flight

    const auto drain_start = Clock::now();
    daemon.request_stop();

    // The in-flight request still gets its answer...
    const auto line = net::read_line(client.get(), 5000);
    EXPECT_TRUE(line.has_value());
    if (line.has_value()) {
      EXPECT_EQ(parse_answer(*line).kind, AnswerKind::kReplica);
    }
    // ...then the daemon closes the session.
    EXPECT_FALSE(net::read_line(client.get(), 3000).has_value());
    EXPECT_LT(Clock::now() - drain_start, 4s);
    return daemon.port();
  }();  // runner joins here — run() must have returned

  // After drain the listener is gone: new connections fail.
  net::ConnectStart conn = net::start_connect("127.0.0.1", port);
  if (conn.fd.valid()) {
    int err = 0;
    const auto deadline = Clock::now() + 2s;
    while (Clock::now() < deadline) {
      err = net::finish_connect(conn.fd.get());
      if (err != 0) break;
      char byte = 0;
      const net::IoResult r = net::read_some(conn.fd.get(), &byte, 1);
      if (r.status == net::IoStatus::kClosed ||
          r.status == net::IoStatus::kError) {
        err = -1;
        break;
      }
      std::this_thread::sleep_for(5ms);
    }
    EXPECT_NE(err, 0);
  }
}

RedirectorDaemon* g_signal_daemon = nullptr;
extern "C" void test_sigterm_handler(int) {
  if (g_signal_daemon != nullptr) g_signal_daemon->request_stop();
}

TEST(RedirectorDaemon, SigtermDrainsViaSignalSafeRequestStop) {
  Fixture fx;
  DaemonConfig config = base_config(fx);
  RedirectorDaemon daemon(config);
  g_signal_daemon = &daemon;
  auto* previous = std::signal(SIGTERM, test_sigterm_handler);
  ASSERT_NE(previous, SIG_ERR);

  DaemonRunner runner(daemon);
  net::Fd client = connect_client(daemon.port());
  const auto a = rpc(client.get(), 0, 0, 1);
  ASSERT_TRUE(a.has_value());

  const auto start = Clock::now();
  ASSERT_EQ(std::raise(SIGTERM), 0);
  runner.stop();  // joins run(); must return promptly after the signal
  EXPECT_LT(Clock::now() - start, 5s);

  std::signal(SIGTERM, previous);
  g_signal_daemon = nullptr;
  EXPECT_EQ(daemon.stats().requests, 1u);
}

// ---------------------------------------------------------------------------
// Health probing.

TEST(HealthProber, MarksDeadReplicasDownAndRecoversLateOnes) {
  test::MockReplica live(test::MockReplica::Mode::kNormal);
  test::MockReplica late(test::MockReplica::Mode::kListenDelay, 300ms);

  EndpointMap endpoints;
  endpoints.replicas.resize(3);
  endpoints.replicas[1] = Endpoint{"127.0.0.1", live.port()};
  endpoints.replicas[2] = Endpoint{"127.0.0.1", late.port()};

  HealthParams params;
  params.probe_interval = 40ms;
  params.probe_timeout = 200ms;
  params.down_after = 1;
  params.up_after = 1;

  net::EventLoop loop;
  HealthProber prober(loop, endpoints, 4, 2, params, nullptr);
  prober.start();

  // Drive the loop on this thread (single-threaded — masks are safe to
  // read between passes).  Phase 1: the late replica is marked down.
  const auto deadline = Clock::now() + 5s;
  while (Clock::now() < deadline && prober.server_up()[2] != 0) {
    loop.run_once(50ms);
  }
  EXPECT_EQ(prober.server_up()[2], 0);   // nothing listening yet
  EXPECT_EQ(prober.server_up()[1], 1);   // healthy replica stays up
  EXPECT_EQ(prober.server_up()[0], 1);   // unmapped server defaults up
  EXPECT_EQ(prober.origin_up()[0], 1);   // unmapped origin defaults up

  // Phase 2: once the delayed listener appears, hysteresis brings it back.
  while (Clock::now() < deadline && prober.server_up()[2] != 1) {
    loop.run_once(50ms);
  }
  EXPECT_EQ(prober.server_up()[2], 1);
  EXPECT_GE(prober.sweeps_completed(), 2u);
  prober.stop();
}

}  // namespace
}  // namespace cdn::redirectd
