// Placement-engine scaling benchmark — reference vs incremental lazy-greedy.
//
// Builds a deterministic N-server / M-site system (ring server topology,
// varied primary distances — no random topology generation, so the bench
// measures placement alone) and runs hybrid_greedy twice: once with the
// kReference engine (full O(N*M) re-evaluation every iteration) and once
// with the kIncremental lazy-heap engine.  The two must agree bitwise on
// the placement and cost trajectory; the bench asserts that before it
// reports anything, so a speedup number can never come from a divergent
// answer.
//
// Emits a schema-versioned BENCH_placement.json artifact (see
// bench/bench_artifact.h) with an embedded provenance manifest, keyed:
//
//   reference_ms / incremental_ms          wall-clock per engine
//   speedup                                reference_ms / incremental_ms
//   reference_candidates / incremental_candidates  benefit evaluations
//   candidate_reduction                    reference / incremental evals
//   replicas                               replicas placed (identical)
//
// The candidate counts and replica count are machine-independent facts
// about the algorithms — tight thresholds — while the wall/speedup numbers
// carry generous ones.  scripts/check_bench_regression.py diffs the file
// against bench/baselines/BENCH_placement.json in CI.
//
// Usage: bench_placement_scaling [--smoke] [artifact.json]
//   --smoke  small system, equivalence check only (CI sanitizer runs).

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_artifact.h"
#include "src/cdn/system.h"
#include "src/obs/registry.h"
#include "src/obs/run_manifest.h"
#include "src/placement/hybrid_greedy.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/workload/demand.h"
#include "src/workload/site_catalog.h"

namespace {

using namespace cdn;

// Owns every component of a synthetic CdnSystem (mirrors the test fixture,
// scaled up).  Servers sit on a ring — C(i,k) = min(|i-k|, n-|i-k|) — and
// primary distances vary per (server, site) so the nearest-replica
// structure is non-trivial.
struct BenchSystem {
  std::unique_ptr<workload::SiteCatalog> catalog;
  std::unique_ptr<workload::DemandMatrix> demand;
  std::unique_ptr<sys::DistanceOracle> distances;
  std::unique_ptr<sys::CdnSystem> system;

  static BenchSystem make(std::size_t servers, std::size_t low_sites,
                          std::size_t high_sites,
                          std::size_t objects_per_site,
                          double storage_fraction, std::uint64_t seed) {
    BenchSystem b;
    workload::SurgeParams params;
    params.objects_per_site = objects_per_site;
    const std::vector<workload::PopularityClass> classes{
        {low_sites, 1.0, "low"}, {high_sites, 8.0, "high"}};
    util::Rng rng(seed);
    b.catalog = std::make_unique<workload::SiteCatalog>(
        workload::SiteCatalog::generate(params, classes, rng));

    util::Rng demand_rng(seed + 1);
    b.demand = std::make_unique<workload::DemandMatrix>(
        workload::DemandMatrix::generate(*b.catalog, servers, 1e7,
                                         demand_rng));

    const std::size_t sites = b.catalog->site_count();
    std::vector<double> ss(servers * servers);
    for (std::size_t i = 0; i < servers; ++i) {
      for (std::size_t k = 0; k < servers; ++k) {
        const std::size_t d = i > k ? i - k : k - i;
        ss[i * servers + k] = static_cast<double>(d < servers - d
                                                      ? d
                                                      : servers - d);
      }
    }
    std::vector<double> sp(servers * sites);
    const double half = static_cast<double>(servers) / 2.0;
    for (std::size_t i = 0; i < servers; ++i) {
      for (std::size_t j = 0; j < sites; ++j) {
        // Primaries are farther than most of the ring, with per-pair
        // variation so different servers prefer different replica spots.
        sp[i * sites + j] = half + 2.0 + static_cast<double>((i + 3 * j) % 7);
      }
    }
    b.distances = std::make_unique<sys::DistanceOracle>(
        servers, sites, std::move(ss), std::move(sp));
    b.system = std::make_unique<sys::CdnSystem>(*b.catalog, *b.demand,
                                                *b.distances,
                                                storage_fraction);
    return b;
  }
};

struct EngineRun {
  placement::PlacementResult result;
  double wall_ms = 0.0;
  double candidates = 0.0;
};

EngineRun run_engine(const sys::CdnSystem& system,
                     placement::PlacementEngine engine) {
  obs::Registry registry;
  placement::HybridGreedyOptions options;
  options.engine = engine;
  options.metrics = &registry;
  const auto start = std::chrono::steady_clock::now();
  auto result = placement::hybrid_greedy(system, options);
  const auto stop = std::chrono::steady_clock::now();
  EngineRun run{std::move(result)};
  run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  if (const auto* c =
          registry.find_counter("placement/hybrid/candidates_evaluated")) {
    run.candidates = static_cast<double>(c->value());
  }
  return run;
}

// Bitwise agreement between the engines: same cells, same trajectory.
bool equivalent(const sys::CdnSystem& system, const EngineRun& ref,
                const EngineRun& inc) {
  bool ok = true;
  for (std::size_t i = 0; i < system.server_count(); ++i) {
    for (std::size_t j = 0; j < system.site_count(); ++j) {
      if (ref.result.placement.is_replicated(
              static_cast<sys::ServerIndex>(i),
              static_cast<sys::SiteIndex>(j)) !=
          inc.result.placement.is_replicated(
              static_cast<sys::ServerIndex>(i),
              static_cast<sys::SiteIndex>(j))) {
        std::cerr << "MISMATCH placement cell (" << i << ", " << j << ")\n";
        ok = false;
      }
    }
  }
  if (ref.result.cost_trajectory != inc.result.cost_trajectory) {
    std::cerr << "MISMATCH cost trajectory (sizes "
              << ref.result.cost_trajectory.size() << " vs "
              << inc.result.cost_trajectory.size() << ")\n";
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string metrics_path = "placement_scaling_metrics.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      metrics_path = arg;
    }
  }

  std::cout << "Hybrid placement scaling: reference vs incremental engine\n\n";

  // Smoke keeps CI sanitizer runs fast but still exercises both engines end
  // to end; the full size is the ISSUE's scaling target (N=256, M=64).
  const std::size_t servers = smoke ? 24 : 256;
  const std::size_t low_sites = smoke ? 9 : 48;
  const std::size_t high_sites = smoke ? 3 : 16;
  const std::size_t objects_per_site = smoke ? 50 : 60;
  const auto bench = BenchSystem::make(servers, low_sites, high_sites,
                                       objects_per_site,
                                       /*storage_fraction=*/0.04,
                                       /*seed=*/2005);
  const sys::CdnSystem& system = *bench.system;

  const auto reference =
      run_engine(system, placement::PlacementEngine::kReference);
  const auto incremental =
      run_engine(system, placement::PlacementEngine::kIncremental);

  if (!equivalent(system, reference, incremental)) {
    std::cerr << "engines diverged; refusing to report timings\n";
    return 1;
  }

  const double speedup = incremental.wall_ms > 0.0
                             ? reference.wall_ms / incremental.wall_ms
                             : 0.0;
  const double reduction = incremental.candidates > 0.0
                               ? reference.candidates / incremental.candidates
                               : 0.0;

  util::TextTable table(
      {"engine", "wall_ms", "candidates", "replicas", "cost/req"});
  table.add_row({"reference", util::format_double(reference.wall_ms, 1),
                 util::format_double(reference.candidates, 0),
                 std::to_string(reference.result.replicas_created),
                 util::format_double(
                     reference.result.predicted_cost_per_request, 4)});
  table.add_row({"incremental", util::format_double(incremental.wall_ms, 1),
                 util::format_double(incremental.candidates, 0),
                 std::to_string(incremental.result.replicas_created),
                 util::format_double(
                     incremental.result.predicted_cost_per_request, 4)});
  std::cout << table.str() << '\n';
  std::cout << "speedup " << util::format_double(speedup, 2)
            << "x, candidate reduction " << util::format_double(reduction, 2)
            << "x, engines byte-identical\n";

  obs::RunManifest manifest = obs::make_run_manifest(
      smoke ? "bench_placement_scaling --smoke" : "bench_placement_scaling");
  manifest.seed = 2005;

  bench::BenchArtifact artifact("placement_scaling");
  artifact.set("servers", static_cast<double>(servers), "count",
               /*higher_is_better=*/true, /*threshold_pct=*/0.0);
  artifact.set("sites", static_cast<double>(system.site_count()), "count",
               true, 0.0);
  artifact.set("reference_ms", reference.wall_ms, "ms", false, 75.0);
  artifact.set("incremental_ms", incremental.wall_ms, "ms", false, 75.0);
  artifact.set("speedup", speedup, "x", true, 90.0);
  // Benefit-evaluation counts are pure algorithm facts: any drift means the
  // engines changed, not the machine.
  artifact.set("reference_candidates", reference.candidates, "count", false,
               1.0);
  artifact.set("incremental_candidates", incremental.candidates, "count",
               false, 1.0);
  artifact.set("candidate_reduction", reduction, "x", true, 5.0);
  artifact.set("replicas",
               static_cast<double>(incremental.result.replicas_created),
               "count", true, 1.0);
  artifact.write_json_file(metrics_path, manifest);
  std::cout << "artifact: " << metrics_path << '\n';
  return 0;
}
