// Availability under increasing failure rates — the robustness benchmark.
//
// Sweeps the random fault regime of fault::FaultSchedule::random over a
// range of per-server failure rates (fixed MTTR, shrinking MTBF) and runs
// hybrid, greedy-global replication, and pure caching against the SAME
// schedule at every rate.  The question the paper's healthy-fleet
// evaluation leaves open: which mechanism degrades most gracefully when
// servers actually crash?  Replicas act as extra live copies (availability
// holds, latency climbs), while caching's copies die with the server that
// held them.
//
// Emits availability and P99 latency series vs failure rate per mechanism
// through the observability JSON exporter:
//
//   avail/failure_rate              swept down-time fraction mttr/(mtbf+mttr)
//   avail/<mech>/availability       1 - failed/measured at each rate
//   avail/<mech>/p99_ms             P99 response time at each rate
//   avail/<mech>/slo_violation      SLO-violation fraction at each rate
//
// Also writes a schema-versioned BENCH_availability.json artifact (see
// bench/bench_artifact.h) with per-mechanism availability / P99 / SLO
// metrics at the harshest swept failure rate; the CI regression gate diffs
// it against bench/baselines/BENCH_availability.json.  The simulation is
// deterministic in the seed, so the thresholds are tight — drift means the
// failover or fault-replay logic changed, not the machine.
//
// Usage: bench_availability [--smoke] [metrics.json]
//                           [--artifact BENCH_availability.json]
//   --smoke  small scenario + short sweep, used by CI sanitizer runs and
//            the bench-regression gate (the committed baseline is a smoke
//            run for exactly that reason).

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_artifact.h"
#include "bench/bench_support.h"
#include "src/core/experiment.h"
#include "src/fault/fault_schedule.h"
#include "src/obs/registry.h"
#include "src/obs/run_manifest.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace cdn;

  bool smoke = false;
  std::string metrics_path = "availability_metrics.json";
  std::string artifact_path;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--artifact" && a + 1 < argc) {
      artifact_path = argv[++a];
    } else {
      metrics_path = arg;
    }
  }

  std::cout << "Availability vs failure rate: hybrid / replication "
               "(greedy-global) / caching\n\n";

  core::ScenarioConfig cfg;
  if (smoke) {
    cfg.server_count = 8;
    cfg.classes = {{6, 1.0, "low"}, {6, 4.0, "medium"}, {4, 16.0, "high"}};
    cfg.surge.objects_per_site = 50;
  } else {
    cfg = bench::paper_config(0.05, 0.0);
  }
  core::Scenario scenario(cfg);
  const std::size_t n = scenario.system().server_count();
  const std::size_t m = scenario.system().site_count();

  auto sim_base = bench::paper_sim();
  if (smoke) sim_base.total_requests = 100'000;
  sim_base.slo_ms = 120.0;

  // Down-time fractions to sweep; MTTR is pinned so higher rates mean more
  // frequent crashes, not longer ones.
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.10}
            : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10, 0.20};
  const double mttr =
      static_cast<double>(sim_base.total_requests) / 50.0;

  const std::vector<core::MechanismSpec> mechanisms = {
      core::hybrid_mechanism(), core::replication_mechanism(),
      core::caching_mechanism()};

  // Placements do not depend on the fault schedule — build each once.
  std::vector<placement::PlacementResult> placements;
  placements.reserve(mechanisms.size());
  for (const auto& spec : mechanisms) {
    placements.push_back(spec.build(scenario.system()));
  }

  obs::Registry registry;
  obs::Series& rate_out = registry.series("avail/failure_rate");
  util::TextTable table({"failure_rate", "mechanism", "availability",
                         "failed", "failover", "p99_ms", "slo_violation"});
  // Per-mechanism results at the harshest swept rate (the last one) — the
  // numbers the regression artifact gates on.
  std::vector<sim::SimulationReport> worst_case(mechanisms.size());

  for (const double rate : rates) {
    fault::FaultSchedule schedule;
    if (rate > 0.0) {
      fault::RandomFaultParams fp;
      fp.mttr_requests = mttr;
      fp.mtbf_requests = mttr * (1.0 - rate) / rate;
      fp.seed = 1234;
      // Origins fail too (10x rarer) — otherwise the primary always
      // backstops every outage and availability stays pinned at 1.
      fp.origin_mtbf_scale = 10.0;
      schedule = fault::FaultSchedule::random(n, m, sim_base.total_requests,
                                              fp);
    }
    rate_out.push(rate);

    for (std::size_t k = 0; k < mechanisms.size(); ++k) {
      auto sim_cfg = sim_base;
      sim_cfg.faults = schedule.empty() ? nullptr : &schedule;
      const auto report =
          sim::simulate(scenario.system(), placements[k], sim_cfg);

      if (rate == rates.back()) worst_case[k] = report;

      const std::string pfx = "avail/" + mechanisms[k].name + "/";
      const double p99 = report.latency_cdf.empty()
                             ? 0.0
                             : report.latency_cdf.quantile(0.99);
      registry.series(pfx + "availability").push(report.availability);
      registry.series(pfx + "p99_ms").push(p99);
      registry.series(pfx + "slo_violation")
          .push(report.slo_violation_fraction);

      table.add_row({util::format_double(rate, 2), mechanisms[k].name,
                     util::format_double(report.availability, 6),
                     std::to_string(report.failed_requests),
                     std::to_string(report.failover_requests),
                     util::format_double(p99, 2),
                     util::format_double(report.slo_violation_fraction, 4)});
    }
  }

  std::cout << table.str() << '\n';
  obs::write_json_file(registry, metrics_path);
  std::cout << "metrics: " << metrics_path << '\n';

  if (!artifact_path.empty()) {
    obs::RunManifest manifest = obs::make_run_manifest(
        smoke ? "bench_availability --smoke" : "bench_availability");
    manifest.seed = sim_base.seed;

    // Deterministic in the seed: tight thresholds, matching the workload
    // metrics in bench_throughput (2% covers libm rounding differences
    // across toolchains, nothing more).
    bench::BenchArtifact artifact("availability");
    for (std::size_t k = 0; k < mechanisms.size(); ++k) {
      const auto& report = worst_case[k];
      const std::string pfx = mechanisms[k].name + "_";
      const double p99 = report.latency_cdf.empty()
                             ? 0.0
                             : report.latency_cdf.quantile(0.99);
      artifact.set(pfx + "availability", report.availability, "ratio",
                   /*higher_is_better=*/true, /*threshold_pct=*/2.0);
      artifact.set(pfx + "p99_ms", p99, "ms", /*higher_is_better=*/false,
                   2.0);
      artifact.set(pfx + "slo_violation", report.slo_violation_fraction,
                   "ratio", /*higher_is_better=*/false, 2.0);
    }
    artifact.write_json_file(artifact_path, manifest);
    std::cout << "artifact: " << artifact_path << '\n';
  }
  return 0;
}
