// Ablation A4 (extension) — cache replacement policy.
//
// The paper models and simulates plain LRU; [15]'s delayed-LRU is cited as
// competitive with replica placement.  This driver swaps the simulator's
// policy under the *same* hybrid placement (optimised for the LRU model)
// and under pure caching, quantifying how much the conclusions depend on
// the replacement policy.

#include <iostream>

#include "bench/bench_support.h"
#include "src/placement/fixed_split.h"
#include "src/placement/hybrid_greedy.h"

int main() {
  using namespace cdn;
  std::cout << "Ablation A4: cache replacement policy "
               "(5% capacity, lambda = 0)\n\n";

  core::Scenario scenario(bench::paper_config(0.05, 0.0));
  const auto hybrid = placement::hybrid_greedy(scenario.system());
  const auto caching = placement::pure_caching(scenario.system());

  util::TextTable table({"placement", "policy", "mean_ms", "hops/req",
                         "cache_hit%"});
  const std::vector<std::pair<const char*,
                              const placement::PlacementResult*>> placements{
      {"hybrid", &hybrid}, {"pure-caching", &caching}};
  for (const auto& [label, placement] : placements) {
    for (const auto policy :
         {cache::PolicyKind::kLru, cache::PolicyKind::kFifo,
          cache::PolicyKind::kLfu, cache::PolicyKind::kClock,
          cache::PolicyKind::kDelayedLru}) {
      auto sim_cfg = bench::paper_sim();
      sim_cfg.policy = policy;
      const auto report =
          sim::simulate(scenario.system(), *placement, sim_cfg);
      table.add_row({label, cache::policy_name(policy),
                     util::format_double(report.mean_latency_ms, 3),
                     util::format_double(report.mean_cost_hops, 4),
                     util::format_double(100.0 * report.cache_hit_ratio, 1)});
    }
  }
  std::cout << table.str()
            << "\nExpectation: LRU/CLOCK/LFU are close (the placement was "
               "optimised for the LRU model); FIFO trails; delayed-LRU "
               "filters one-hit wonders.\n";
  return 0;
}
