// Placement model-tier benchmark — exact vs closed-form vs Che candidate
// pricing on the incremental hybrid engine.
//
// Builds the same deterministic ring systems as bench_placement_scaling and
// sweeps N in {64, 256, 512} x M in {64, 256} x placement-model tiers.  For
// every swept (N, M) it runs hybrid_greedy (kIncremental) three times and
// HARD-GATES (exit 1) the tentpole acceptance criteria:
//
//   * final-cost parity   — each cheap tier's final predicted cost within
//                           1% of the exact tier's, at EVERY (N, M);
//   * eval speedup        — candidate-evaluation time (the engine's
//                           placement/hybrid/phase/eval timer) of the
//                           closed-form tier >= 5x faster than exact at
//                           N=512 / M=256;
//   * exact immutability  — the kExact tier is byte-identical (placement
//                           cells + full cost trajectory) to a run with
//                           default options, and its placement digest is
//                           exported with a 0%-threshold so the CI baseline
//                           diff (scripts/check_bench_regression.py)
//                           enforces digest identity across commits.
//
// Emits a schema-versioned BENCH_placement_model.json artifact (see
// bench/bench_artifact.h).  Per-config keys are prefixed nN_mM_<tier>_:
// wall_ms, eval_ms, cost, plus the derived eval_speedup and cost_ratio_pct;
// algorithm facts (replicas, digests, tier fallback counts) carry tight
// thresholds, wall-clock numbers generous ones.
//
// Usage: bench_placement_model [--smoke] [artifact.json]
//   --smoke  one small config, gates except the 512x256 speedup (CI
//            sanitizer runs).

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_artifact.h"
#include "src/cdn/system.h"
#include "src/obs/registry.h"
#include "src/obs/run_manifest.h"
#include "src/placement/hybrid_greedy.h"
#include "src/placement/model_support.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/workload/demand.h"
#include "src/workload/site_catalog.h"

namespace {

using namespace cdn;

// Deterministic synthetic system on a ring topology (identical construction
// to bench_placement_scaling so the two artifacts describe the same world).
struct BenchSystem {
  std::unique_ptr<workload::SiteCatalog> catalog;
  std::unique_ptr<workload::DemandMatrix> demand;
  std::unique_ptr<sys::DistanceOracle> distances;
  std::unique_ptr<sys::CdnSystem> system;

  static BenchSystem make(std::size_t servers, std::size_t low_sites,
                          std::size_t high_sites,
                          std::size_t objects_per_site,
                          double storage_fraction, std::uint64_t seed) {
    BenchSystem b;
    workload::SurgeParams params;
    params.objects_per_site = objects_per_site;
    const std::vector<workload::PopularityClass> classes{
        {low_sites, 1.0, "low"}, {high_sites, 8.0, "high"}};
    util::Rng rng(seed);
    b.catalog = std::make_unique<workload::SiteCatalog>(
        workload::SiteCatalog::generate(params, classes, rng));

    util::Rng demand_rng(seed + 1);
    b.demand = std::make_unique<workload::DemandMatrix>(
        workload::DemandMatrix::generate(*b.catalog, servers, 1e7,
                                         demand_rng));

    const std::size_t sites = b.catalog->site_count();
    std::vector<double> ss(servers * servers);
    for (std::size_t i = 0; i < servers; ++i) {
      for (std::size_t k = 0; k < servers; ++k) {
        const std::size_t d = i > k ? i - k : k - i;
        ss[i * servers + k] =
            static_cast<double>(d < servers - d ? d : servers - d);
      }
    }
    std::vector<double> sp(servers * sites);
    const double half = static_cast<double>(servers) / 2.0;
    for (std::size_t i = 0; i < servers; ++i) {
      for (std::size_t j = 0; j < sites; ++j) {
        sp[i * sites + j] = half + 2.0 + static_cast<double>((i + 3 * j) % 7);
      }
    }
    b.distances = std::make_unique<sys::DistanceOracle>(
        servers, sites, std::move(ss), std::move(sp));
    b.system = std::make_unique<sys::CdnSystem>(*b.catalog, *b.demand,
                                                *b.distances,
                                                storage_fraction);
    return b;
  }
};

struct TierRun {
  placement::PlacementResult result;
  double wall_ms = 0.0;
  double eval_ms = 0.0;
  double fallbacks = 0.0;
};

TierRun run_tier(const sys::CdnSystem& system, placement::PlacementModel tier,
                 std::size_t max_replicas) {
  obs::Registry registry;
  placement::HybridGreedyOptions options;
  options.engine = placement::PlacementEngine::kIncremental;
  options.placement_model = tier;
  options.max_replicas = max_replicas;
  options.metrics = &registry;
  options.metrics_prefix = "placement/hybrid/";
  const auto start = std::chrono::steady_clock::now();
  auto result = placement::hybrid_greedy(system, options);
  const auto stop = std::chrono::steady_clock::now();
  TierRun run{std::move(result)};
  run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  if (const auto* t = registry.find_timer("placement/hybrid/phase/eval")) {
    run.eval_ms = static_cast<double>(t->total_ns()) * 1e-6;
  }
  if (const auto* c =
          registry.find_counter("placement/hybrid/tier_fallbacks")) {
    run.fallbacks = static_cast<double>(c->value());
  }
  return run;
}

// FNV-1a over the placement bitmap and the raw cost-trajectory doubles:
// any bit of drift in the exact path moves this digest.
std::uint64_t placement_digest(const sys::CdnSystem& system,
                               const placement::PlacementResult& run) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (std::size_t i = 0; i < system.server_count(); ++i) {
    for (std::size_t j = 0; j < system.site_count(); ++j) {
      mix(run.placement.is_replicated(static_cast<sys::ServerIndex>(i),
                                      static_cast<sys::SiteIndex>(j))
              ? 1u
              : 0u);
    }
  }
  for (const double c : run.cost_trajectory) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(c));
    __builtin_memcpy(&bits, &c, sizeof(bits));
    mix(bits);
  }
  return h;
}

bool byte_identical(const sys::CdnSystem& system,
                    const placement::PlacementResult& a,
                    const placement::PlacementResult& b) {
  for (std::size_t i = 0; i < system.server_count(); ++i) {
    for (std::size_t j = 0; j < system.site_count(); ++j) {
      if (a.placement.is_replicated(static_cast<sys::ServerIndex>(i),
                                    static_cast<sys::SiteIndex>(j)) !=
          b.placement.is_replicated(static_cast<sys::ServerIndex>(i),
                                    static_cast<sys::SiteIndex>(j))) {
        return false;
      }
    }
  }
  return a.cost_trajectory == b.cost_trajectory;
}

struct Config {
  std::size_t servers;
  std::size_t low_sites;
  std::size_t high_sites;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string metrics_path = "placement_model_metrics.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      metrics_path = arg;
    }
  }

  std::cout << "Hybrid placement model tiers: exact vs closed-form vs che\n\n";

  std::vector<Config> configs;
  if (smoke) {
    configs.push_back({24, 9, 3});
  } else {
    for (const std::size_t n : {std::size_t{64}, std::size_t{256},
                                std::size_t{512}}) {
      configs.push_back({n, 48, 16});    // M = 64
      configs.push_back({n, 192, 64});   // M = 256
    }
  }

  const std::vector<std::pair<placement::PlacementModel, std::string>> tiers{
      {placement::PlacementModel::kExact, "exact"},
      {placement::PlacementModel::kClosedForm, "closed_form"},
      {placement::PlacementModel::kChe, "che"}};

  obs::RunManifest manifest = obs::make_run_manifest(
      smoke ? "bench_placement_model --smoke" : "bench_placement_model");
  manifest.seed = 2005;
  bench::BenchArtifact artifact("placement_model");

  util::TextTable table({"N", "M", "tier", "wall_ms", "eval_ms",
                         "eval_speedup", "cost/req", "cost_vs_exact_%",
                         "replicas", "fallbacks"});
  bool gates_ok = true;
  auto fail = [&gates_ok](const std::string& what) {
    std::cerr << "GATE FAILED: " << what << '\n';
    gates_ok = false;
  };

  for (const Config& cfg : configs) {
    const auto bench = BenchSystem::make(cfg.servers, cfg.low_sites,
                                         cfg.high_sites,
                                         /*objects_per_site=*/40,
                                         /*storage_fraction=*/0.04,
                                         /*seed=*/2005);
    const sys::CdnSystem& system = *bench.system;
    const std::size_t m = system.site_count();
    const std::string key =
        "n" + std::to_string(cfg.servers) + "_m" + std::to_string(m) + "_";

    // Runs are replica-capped so the sweep stays CI-sized; the cap binds
    // identically across tiers, so cost parity compares like with like.
    const std::size_t max_replicas = smoke ? 0 : 300;

    // Gate: the exact tier must be byte-identical to a run through options
    // that never mention a tier (the plumbing must not have perturbed the
    // pre-tier code path).  Checked at the cheapest config only — the
    // digest metric extends the same guarantee to every config over time.
    const bool check_identity = smoke || cfg.servers == 64;
    std::optional<placement::PlacementResult> baseline;
    if (check_identity) {
      placement::HybridGreedyOptions options;
      options.engine = placement::PlacementEngine::kIncremental;
      options.max_replicas = max_replicas;
      baseline.emplace(placement::hybrid_greedy(system, options));
    }

    double exact_eval_ms = 0.0;
    double exact_cost = 0.0;
    for (const auto& [tier, name] : tiers) {
      const TierRun run = run_tier(system, tier, max_replicas);
      std::cerr << "  [" << key << name << "] wall "
                << util::format_double(run.wall_ms, 0) << " ms, eval "
                << util::format_double(run.eval_ms, 0) << " ms\n";
      const double cost = run.result.predicted_cost_per_request;
      double ratio_pct = 0.0;
      double speedup = 1.0;
      if (tier == placement::PlacementModel::kExact) {
        exact_eval_ms = run.eval_ms;
        exact_cost = cost;
        if (check_identity && !byte_identical(system, *baseline, run.result)) {
          fail(key + "exact diverged from the default-options engine");
        }
        const std::uint64_t digest = placement_digest(system, run.result);
        // Folded to 32 bits so the value is exact in a double; 0% threshold
        // makes the CI baseline diff a digest-identity check.
        artifact.set(key + "exact_digest",
                     static_cast<double>(digest % 0xffffffffull), "hash",
                     /*higher_is_better=*/true, /*threshold_pct=*/0.0);
      } else {
        ratio_pct = exact_cost != 0.0
                        ? 100.0 * (cost - exact_cost) / exact_cost
                        : 0.0;
        speedup = run.eval_ms > 0.0 ? exact_eval_ms / run.eval_ms : 0.0;
        if (!(std::abs(cost - exact_cost) <= 0.01 * exact_cost)) {
          fail(key + name + " final cost " + util::format_double(cost, 4) +
               " beyond 1% of exact " + util::format_double(exact_cost, 4));
        }
        if (!smoke && cfg.servers == 512 && m == 256 &&
            tier == placement::PlacementModel::kClosedForm &&
            speedup < 5.0) {
          fail("closed-form eval speedup " + util::format_double(speedup, 2) +
               "x < 5x at N=512 M=256");
        }
        artifact.set(key + name + "_eval_speedup", speedup, "x",
                     /*higher_is_better=*/true, /*threshold_pct=*/60.0);
        artifact.set(key + name + "_cost_ratio_pct", ratio_pct, "%",
                     /*higher_is_better=*/false, /*threshold_pct=*/1.0);
      }
      artifact.set(key + name + "_wall_ms", run.wall_ms, "ms",
                   /*higher_is_better=*/false, /*threshold_pct=*/75.0);
      artifact.set(key + name + "_eval_ms", run.eval_ms, "ms",
                   /*higher_is_better=*/false, /*threshold_pct=*/75.0);
      artifact.set(key + name + "_replicas",
                   static_cast<double>(run.result.replicas_created), "count",
                   /*higher_is_better=*/true, /*threshold_pct=*/2.0);
      table.add_row({std::to_string(cfg.servers), std::to_string(m), name,
                     util::format_double(run.wall_ms, 1),
                     util::format_double(run.eval_ms, 1),
                     util::format_double(speedup, 2),
                     util::format_double(cost, 4),
                     util::format_double(ratio_pct, 3),
                     std::to_string(run.result.replicas_created),
                     util::format_double(run.fallbacks, 0)});
    }
  }

  std::cout << table.str() << '\n';
  artifact.write_json_file(metrics_path, manifest);
  std::cout << "artifact: " << metrics_path << '\n';
  if (!gates_ok) {
    std::cerr << "bench_placement_model: acceptance gates failed\n";
    return 1;
  }
  std::cout << "all gates passed\n";
  return 0;
}
