// Figure 4 — "Performance comparison of different content delivery
// mechanisms (lambda = 0.1)": same panels as Figure 3 but with 10% of
// requests hitting expired objects under strong consistency, so cached
// copies must be refreshed from the nearest replica while site replicas
// stay consistent for free.  The paper reports the hybrid's gain over
// replication dropping to ~30% while the gain over caching grows to ~20%.

#include <iostream>

#include "bench/bench_support.h"

int main() {
  using namespace cdn;
  std::cout << "Figure 4: Replication vs Caching vs Hybrid (lambda = 0.1, "
               "strong consistency)\n";

  for (double capacity : {0.05, 0.10}) {
    core::Scenario scenario(bench::paper_config(capacity, /*lambda=*/0.1));
    auto sim = bench::paper_sim();
    sim.staleness = sim::StalenessMode::kRefresh;
    const auto runs = core::run_mechanisms(
        scenario,
        {core::replication_mechanism(), core::caching_mechanism(),
         core::hybrid_mechanism()},
        sim);
    bench::print_panel("Figure 4(" + std::string(capacity == 0.05 ? "a" : "b") +
                           "): " + util::format_double(capacity * 100, 0) +
                           "% capacity, lambda = 0.1",
                       runs);
    std::cout << "hybrid vs replication: "
              << util::format_double(
                     core::mean_latency_gain_percent(runs[0], runs[2]), 1)
              << "% lower mean latency (paper: ~30%)\n"
              << "hybrid vs caching:     "
              << util::format_double(
                     core::mean_latency_gain_percent(runs[1], runs[2]), 1)
              << "% lower mean latency (paper: ~20%)\n";
  }
  return 0;
}
