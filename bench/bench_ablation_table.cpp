// Ablation A2 — hit-ratio evaluation fast path (DESIGN.md).
//
// The paper pre-computes Eq. 1 into a lookup table to give the greedy O(1)
// hit-ratio queries.  Our fast path is a 1-D table over z = K*p built on
// the exponential approximation.  This driver quantifies (a) the accuracy
// of the exponential form and of the interpolated table against exact
// Eq. 1, across grid resolutions, and (b) the speedup.

#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "src/model/hit_ratio_curve.h"
#include "src/util/table.h"
#include "src/util/zipf.h"

int main() {
  using namespace cdn;
  using Clock = std::chrono::steady_clock;
  std::cout << "Ablation A2: Eq. 1 exact vs exponential vs table\n\n";

  const util::ZipfDistribution zipf(1000, 1.0);

  // Operating grid: the (p, K) pairs a 50-server/200-site run actually
  // queries (site popularity around 1/200, K in the hundreds..tens of
  // thousands).
  std::vector<std::pair<double, double>> points;
  for (double p : {1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2}) {
    for (double k : {50.0, 200.0, 1e3, 5e3, 2e4, 1e5}) {
      points.emplace_back(p, k);
    }
  }

  util::TextTable table({"grid_points", "max_abs_err", "mean_abs_err",
                         "build_ms", "eval_ns"});
  for (std::size_t grid : {64, 256, 1024, 2048, 8192}) {
    const auto b0 = Clock::now();
    const model::HitRatioCurve curve(zipf, grid);
    const double build_ms =
        1e3 * std::chrono::duration<double>(Clock::now() - b0).count();

    double max_err = 0.0, sum_err = 0.0;
    for (const auto& [p, k] : points) {
      const double exact = model::lru_hit_ratio_exact(zipf, p, k);
      const double fast = curve.evaluate(p, k);
      const double err = std::abs(fast - exact);
      max_err = std::max(max_err, err);
      sum_err += err;
    }

    // Evaluation throughput.
    const auto e0 = Clock::now();
    double sink = 0.0;
    const int reps = 2'000'000;
    for (int i = 0; i < reps; ++i) {
      const auto& [p, k] = points[static_cast<std::size_t>(i) % points.size()];
      sink += curve.evaluate(p, k);
    }
    const double eval_ns =
        1e9 * std::chrono::duration<double>(Clock::now() - e0).count() / reps;
    if (sink < 0) std::cout << "";  // keep the loop alive

    table.add_row({std::to_string(grid), util::format_double(max_err, 6),
                   util::format_double(sum_err / static_cast<double>(points.size()), 6),
                   util::format_double(build_ms, 2),
                   util::format_double(eval_ns, 1)});
  }

  // Exact-evaluation cost for contrast.
  const auto x0 = Clock::now();
  double sink = 0.0;
  const int reps = 20'000;
  for (int i = 0; i < reps; ++i) {
    const auto& [p, k] = points[static_cast<std::size_t>(i) % points.size()];
    sink += model::lru_hit_ratio_exact(zipf, p, k);
  }
  const double exact_ns =
      1e9 * std::chrono::duration<double>(Clock::now() - x0).count() / reps;
  if (sink < 0) std::cout << "";

  std::cout << table.str() << "\nexact Eq. 1 evaluation: "
            << util::format_double(exact_ns, 0)
            << " ns (the table's speedup makes the O(M^2 N) greedy "
               "inner loop feasible)\n";
  return 0;
}
