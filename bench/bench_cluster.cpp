// Future-work bench — per-cluster replication (Section 5.3).
//
// The paper conjectures: "against a per-cluster replication scheme hybrid
// will again be the winner with the latency reduction varying in between
// the per-site replication and the caching case ... Proving the validity of
// the above claim is left for future work."  This driver provides that
// evaluation: per-site replication, per-cluster replication at several
// granularities, pure caching, and the hybrid, all at 5% capacity —
// under (a) stationary demand and (b) a flash crowd that the static
// placements did not anticipate.

#include <iostream>
#include <vector>

#include "bench/bench_support.h"
#include "src/cluster/cluster_replication.h"
#include "src/cluster/cluster_sim.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/placement/fixed_split.h"

int main() {
  using namespace cdn;
  std::cout << "Future work (Section 5.3): per-cluster replication vs the "
               "hybrid (5% capacity, lambda = 0)\n\n";

  core::Scenario scenario(bench::paper_config(0.05, 0.0));
  const auto& system = scenario.system();
  auto sim_cfg = bench::paper_sim();

  // Flash-crowd demand: a low-popularity site (id 0) goes 50x viral; the
  // static placements below were computed on the ORIGINAL demand.
  std::vector<double> spiked;
  spiked.reserve(system.server_count() * system.site_count());
  for (std::size_t i = 0; i < system.server_count(); ++i) {
    const auto row = system.demand().row(static_cast<sys::ServerIndex>(i));
    for (std::size_t j = 0; j < row.size(); ++j) {
      spiked.push_back(j == 0 ? row[j] * 50.0 : row[j]);
    }
  }
  const auto spiked_demand = workload::DemandMatrix::from_values(
      system.server_count(), system.site_count(), spiked);
  const sys::CdnSystem spiked_system(scenario.catalog(), spiked_demand,
                                     scenario.distances(), 0.05);

  util::TextTable table({"mechanism", "stationary_mean_ms",
                         "flashcrowd_mean_ms", "replicas"});

  const auto report_row = [&](const std::string& name, double stat_ms,
                              double flash_ms, std::size_t replicas) {
    table.add_row({name, util::format_double(stat_ms, 3),
                   util::format_double(flash_ms, 3),
                   std::to_string(replicas)});
  };

  {
    const auto p = placement::greedy_global(system);
    const auto a = sim::simulate(system, p, sim_cfg);
    const auto b = sim::simulate(spiked_system, p, sim_cfg);
    report_row("site-replication", a.mean_latency_ms, b.mean_latency_ms,
               p.replicas_created);
  }
  for (std::uint32_t clusters : {4u, 16u, 64u}) {
    const auto p = cluster::cluster_greedy_global(system, clusters);
    const auto a = cluster::simulate_clusters(system, p, sim_cfg);
    const auto b = cluster::simulate_clusters(spiked_system, p, sim_cfg);
    report_row("cluster-replication C=" + std::to_string(clusters),
               a.mean_latency_ms, b.mean_latency_ms, p.replicas_created);
  }
  {
    const auto p = placement::pure_caching(system);
    const auto a = sim::simulate(system, p, sim_cfg);
    const auto b = sim::simulate(spiked_system, p, sim_cfg);
    report_row("caching", a.mean_latency_ms, b.mean_latency_ms, 0);
  }
  {
    const auto p = placement::hybrid_greedy(system);
    const auto a = sim::simulate(system, p, sim_cfg);
    const auto b = sim::simulate(spiked_system, p, sim_cfg);
    report_row("hybrid", a.mean_latency_ms, b.mean_latency_ms,
               p.replicas_created);
  }

  std::cout << table.str()
            << "\nReading: under stationary demand, finer static clusters "
               "approach the per-object optimum and can rival or beat the "
               "hybrid;\nunder the unanticipated flash crowd the hybrid's "
               "caches adapt while every static placement degrades — the "
               "conjecture's spirit (caching is the robust half of the "
               "split) holds, its letter only for coarse clusters.\n";
  return 0;
}
