// Extension bench — Section 3.3 consistency mechanisms made concrete.
//
// The paper folds consistency into a flat lambda.  Here the simulator runs
// the real mechanisms on the hybrid placement: TTL-based weak consistency
// (several TTLs) and invalidation-based strong consistency, with per-object
// modification intervals of 1-24 h as reported by [22].  The paper's
// Section 3.3 argument — "the probability of requesting a stale object is
// very small", so strong consistency is cheap inside a CDN — becomes a
// measurable row.

#include <iostream>

#include "bench/bench_support.h"
#include "src/placement/hybrid_greedy.h"
#include "src/sim/consistency_sim.h"

int main() {
  using namespace cdn;
  std::cout << "Consistency mechanisms on the hybrid placement "
               "(5% capacity)\n\n";

  core::Scenario scenario(bench::paper_config(0.05, 0.0));
  const auto placement = placement::hybrid_greedy(scenario.system());
  auto sim_cfg = bench::paper_sim();

  util::TextTable table({"mechanism", "mean_ms", "hops/req", "stale%",
                         "validations", "inval_misses"});

  auto run = [&](const std::string& name, const sim::ConsistencyConfig& cc) {
    const auto report = sim::simulate_with_consistency(
        scenario.system(), placement, sim_cfg, cc);
    table.add_row({name,
                   util::format_double(report.base.mean_latency_ms, 3),
                   util::format_double(report.base.mean_cost_hops, 4),
                   util::format_double(100.0 * report.stale_ratio(), 4),
                   std::to_string(report.validations),
                   std::to_string(report.invalidation_misses)});
  };

  sim::ConsistencyConfig none;
  none.mode = sim::ConsistencyMode::kBernoulli;
  run("none (lambda=0)", none);

  for (double ttl : {60.0, 600.0, 3600.0}) {
    sim::ConsistencyConfig ttl_cfg;
    ttl_cfg.mode = sim::ConsistencyMode::kTtl;
    ttl_cfg.ttl = ttl;
    run("ttl " + util::format_double(ttl, 0) + "s", ttl_cfg);
  }

  sim::ConsistencyConfig strong;
  strong.mode = sim::ConsistencyMode::kInvalidation;
  run("invalidation (strong)", strong);

  std::cout << table.str()
            << "\nReading: with 1-24 h update intervals, strong consistency "
               "costs almost nothing (few invalidation misses) while TTLs "
               "trade validation traffic against staleness — matching the "
               "paper's Section 3.3 argument for running strong consistency "
               "inside a CDN.\n";
  return 0;
}
