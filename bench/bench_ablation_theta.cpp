// Ablation A3 — Zipf-theta sensitivity (DESIGN.md; paper Section 5.2).
//
// "ad-hoc approaches are sensitive to changes in the Zipf parameter theta
// ...  The hybrid algorithm, however, takes the Zipf parameter as input and
// defines a cache size that leads to higher performance."  This driver
// sweeps theta and compares the hybrid against 20%- and 80%-cache fixed
// splits; the hybrid should be (near-)best everywhere, while each fixed
// split degrades on one side of the sweep.

#include <iostream>

#include "bench/bench_support.h"

int main() {
  using namespace cdn;
  std::cout << "Ablation A3: Zipf theta sensitivity (5% capacity, "
               "lambda = 0)\n\n";

  util::TextTable table({"theta", "mechanism", "mean_ms", "hops/req",
                         "replicas", "cache_share%"});

  for (double theta : {0.6, 0.8, 1.0, 1.2}) {
    auto cfg = bench::paper_config(0.05, 0.0);
    cfg.surge.zipf_theta = theta;
    core::Scenario scenario(cfg);
    const auto runs = core::run_mechanisms(
        scenario,
        {core::hybrid_mechanism(), core::fixed_split_mechanism(0.2),
         core::fixed_split_mechanism(0.8)},
        bench::paper_sim());
    for (const auto& run : runs) {
      std::uint64_t cache = 0, storage = 0;
      for (std::size_t i = 0; i < scenario.system().server_count(); ++i) {
        const auto server = static_cast<sys::ServerIndex>(i);
        cache += run.placement.cache_bytes(server);
        storage += scenario.system().server_storage(server);
      }
      table.add_row({util::format_double(theta, 1), run.name,
                     util::format_double(run.report.mean_latency_ms, 3),
                     util::format_double(run.report.mean_cost_hops, 4),
                     std::to_string(run.placement.replicas_created),
                     util::format_double(
                         100.0 * static_cast<double>(cache) /
                             static_cast<double>(storage), 1)});
    }
  }
  std::cout << table.str()
            << "\nExpectation: the hybrid adapts its cache share to theta "
               "and stays best; fixed splits trade places.\n";
  return 0;
}
