// Extension bench — server-selection policies (Section 2.2's second axis).
//
// Compares nearest-copy redirection (the paper's rule) with [9]-style
// load-aware selection at full paper scale, across placements and fleet
// headrooms.  The metric is the flow-level response cost: network hops plus
// an M/M/1-shaped queueing penalty.

#include <iostream>
#include <vector>

#include "bench/bench_support.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/redirect/server_selection.h"

int main() {
  using namespace cdn;
  std::cout << "Server selection: nearest vs load-aware "
               "(5% capacity, lambda = 0)\n\n";

  core::Scenario scenario(bench::paper_config(0.05, 0.0));
  const auto& system = scenario.system();

  util::TextTable table({"placement", "headroom", "selection", "net_hops",
                         "resp_cost", "max_util%"});

  for (const auto& [name, placement] :
       std::vector<std::pair<const char*, placement::PlacementResult>>{
           {"replication", placement::greedy_global(system)},
           {"hybrid", placement::hybrid_greedy(system)}}) {
    redirect::SelectionParams probe;
    probe.policy = redirect::SelectionPolicy::kNearest;
    const auto baseline =
        redirect::assign_miss_traffic(system, placement, probe);
    double total = 0.0;
    for (double f : baseline.server_flow) total += f;
    const double mean_load =
        total / static_cast<double>(system.server_count());

    for (double headroom : {1.2, 2.0, 4.0}) {
      for (const auto policy : {redirect::SelectionPolicy::kNearest,
                                redirect::SelectionPolicy::kLoadAware}) {
        redirect::SelectionParams params;
        params.policy = policy;
        params.server_capacity = headroom * mean_load;
        params.primary_capacity = 4.0 * headroom * mean_load;
        const auto sel =
            redirect::assign_miss_traffic(system, placement, params);
        table.add_row(
            {name, util::format_double(headroom, 1),
             policy == redirect::SelectionPolicy::kNearest ? "nearest"
                                                           : "load-aware",
             util::format_double(sel.mean_network_hops, 3),
             util::format_double(sel.mean_response_cost, 3),
             util::format_double(100.0 * sel.max_server_utilization, 1)});
      }
    }
  }
  std::cout << table.str()
            << "\nReading: at tight headroom, load-aware selection trades a "
               "few hops for a large cut in peak utilisation; at 4x "
               "headroom the policies coincide (queueing is negligible) — "
               "consistent with the paper treating nearest-copy as "
               "sufficient for a well-provisioned CDN.\n";
  return 0;
}
