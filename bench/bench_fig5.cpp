// Figure 5 — "Greedy algorithm vs ad-hoc schemes": the hybrid greedy
// against fixed cache/replica splits (20% and 80% cache; the text also
// reports 40%/60% runs confirming the trend) at 5% capacity, for lambda = 0
// and lambda = 0.1.  The paper's conclusion: ad-hoc splits are never
// competitive with the model-driven split.

#include <iostream>

#include "bench/bench_support.h"

int main() {
  using namespace cdn;
  std::cout << "Figure 5: Hybrid greedy vs ad-hoc fixed splits "
               "(5% capacity)\n";

  for (double lambda : {0.0, 0.1}) {
    core::Scenario scenario(bench::paper_config(0.05, lambda));
    auto sim = bench::paper_sim();
    sim.staleness = sim::StalenessMode::kRefresh;
    const auto runs = core::run_mechanisms(
        scenario,
        {core::hybrid_mechanism(), core::fixed_split_mechanism(0.2),
         core::fixed_split_mechanism(0.4), core::fixed_split_mechanism(0.6),
         core::fixed_split_mechanism(0.8)},
        sim);
    bench::print_panel(
        "Figure 5(" + std::string(lambda == 0.0 ? "a" : "b") +
            "): 5% capacity, lambda = " + util::format_double(lambda, 1),
        runs);
    for (std::size_t i = 1; i < runs.size(); ++i) {
      std::cout << "hybrid vs " << runs[i].name << ": "
                << util::format_double(
                       core::mean_latency_gain_percent(runs[i], runs[0]), 1)
                << "% lower mean latency\n";
    }
  }
  return 0;
}
