// Simulator throughput bench — requests/sec of the sequential reference
// engine and the parallel sharded engine on the paper's full scenario
// (N = 50, M = 200, pure-caching placement so the measurement is
// simulate-dominated, not placement-dominated).
//
// Writes a schema-versioned BENCH_throughput.json artifact (see
// bench/bench_artifact.h) with an embedded provenance manifest; the CI
// regression gate diffs it against bench/baselines/BENCH_throughput.json
// with scripts/check_bench_regression.py.
//
// Wall-clock metrics carry generous thresholds (machines differ); the
// workload metrics (local ratio, mean hop cost) are deterministic in
// (seed, shards) — the shard count is pinned here for exactly that reason —
// and carry tight thresholds, so a silent change to the request stream or
// the cache model fails the gate even when the run happens to be fast.
//
// Usage: bench_throughput [--smoke] [artifact.json]
//   --smoke  500k requests instead of 5M (sanitizer/CI-PR runs).

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_artifact.h"
#include "bench/bench_support.h"
#include "src/cache/probe_table.h"
#include "src/obs/run_manifest.h"
#include "src/placement/fixed_split.h"
#include "src/sim/sim_checkpoint.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/zipf.h"
#include "src/workload/request_stream.h"

namespace {

using namespace cdn;

struct EngineRun {
  sim::SimulationReport report;
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
};

EngineRun run_engine(const sys::CdnSystem& system,
                     const placement::PlacementResult& placement,
                     sim::SimulationConfig cfg, std::size_t threads) {
  cfg.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  EngineRun run{sim::simulate(system, placement, cfg)};
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.requests_per_sec =
      run.wall_seconds > 0.0
          ? static_cast<double>(cfg.total_requests) / run.wall_seconds
          : 0.0;
  return run;
}

// Steady-state probe rate of the cache policies' open-addressed hit path
// (Zipf keys against a warm table) — the per-request primitive the
// data-oriented loop leans on hardest.
double cache_probe_ops_per_sec(std::uint64_t ops) {
  cache::ProbeTable table;
  constexpr std::uint64_t kResident = 10'000;
  for (std::uint64_t k = 1; k <= kResident; ++k) {
    table.insert(k, static_cast<std::uint32_t>(k));
  }
  // Keys are drawn up front so the timed loop is probes, not Zipf
  // sampling (BM_RequestBatchGen / batch_gen_requests_per_sec cover that).
  const util::ZipfDistribution zipf(100'000, 1.0);
  util::Rng rng(1);
  std::vector<std::uint64_t> keys(1u << 20);
  for (auto& key : keys) {
    key = static_cast<std::uint64_t>(zipf.sample(rng));
  }
  std::uint64_t hits = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    hits += table.find(keys[i & (keys.size() - 1)]) != cache::ProbeTable::kNil
                ? 1
                : 0;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  CDN_EXPECT(hits > 0, "probe bench found no resident keys");
  return wall > 0.0 ? static_cast<double>(ops) / wall : 0.0;
}

// SoA batch-generation rate of workload::RequestStream::next_batch — the
// input stage of the data-oriented request loop.
double batch_gen_requests_per_sec(const sys::CdnSystem& system,
                                  std::uint64_t requests) {
  workload::RequestStream stream(system.catalog(), system.demand(), 99);
  workload::RequestBatch batch;
  constexpr std::size_t kBatch = 4096;  // the engines' chunk size
  std::uint64_t generated = 0;
  const auto start = std::chrono::steady_clock::now();
  while (generated < requests) {
    stream.next_batch(batch, kBatch);
    generated += kBatch;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return wall > 0.0 ? static_cast<double>(generated) / wall : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_throughput.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  std::cout << "Simulator throughput: sequential vs parallel sharded engine\n";

  core::Scenario scenario(bench::paper_config(0.05, 0.0));
  const auto placement = placement::pure_caching(scenario.system());

  sim::SimulationConfig cfg;
  cfg.total_requests = smoke ? 500'000 : 5'000'000;
  cfg.warmup_fraction = 0.3;
  cfg.seed = 99;
  cfg.shards = 8;  // pinned: parallel results are deterministic in
                   // (seed, shards), never in the machine's core count

  const auto seq = run_engine(scenario.system(), placement, cfg, 1);
  const auto par = run_engine(scenario.system(), placement, cfg, 0);
  const double speedup =
      par.requests_per_sec > 0.0 && seq.requests_per_sec > 0.0
          ? par.requests_per_sec / seq.requests_per_sec
          : 0.0;

  util::TextTable table(
      {"engine", "wall_s", "req/s", "local%", "hops/req", "digest"});
  for (const auto& [name, run] :
       {std::pair<const char*, const EngineRun&>{"sequential", seq},
        std::pair<const char*, const EngineRun&>{"parallel", par}}) {
    std::ostringstream digest;
    digest << std::hex << std::setfill('0') << std::setw(16)
           << sim::report_digest(run.report);
    table.add_row({name, util::format_double(run.wall_seconds, 2),
                   util::format_double(run.requests_per_sec, 0),
                   util::format_double(100.0 * run.report.local_ratio, 2),
                   util::format_double(run.report.mean_cost_hops, 4),
                   digest.str()});
  }
  std::cout << table.str() << "parallel speedup "
            << util::format_double(speedup, 2) << "x\n";

  const double probe_rate = cache_probe_ops_per_sec(smoke ? 2'000'000
                                                          : 20'000'000);
  const double batch_rate = batch_gen_requests_per_sec(
      scenario.system(), smoke ? 1'000'000 : 10'000'000);
  std::cout << "cache probe " << util::format_double(probe_rate / 1e6, 1)
            << " Mops/s, batch gen "
            << util::format_double(batch_rate / 1e6, 1) << " Mreq/s\n";

  obs::RunManifest manifest =
      obs::make_run_manifest(smoke ? "bench_throughput --smoke"
                                   : "bench_throughput");
  manifest.seed = cfg.seed;
  manifest.threads = 0;
  manifest.shards = cfg.shards;
  for (const auto& [engine, kind] :
       {std::pair<const char*, sim::detail::EngineKind>{
            "engine/sequential", sim::detail::EngineKind::kSequential},
        std::pair<const char*, sim::detail::EngineKind>{
            "engine/parallel", sim::detail::EngineKind::kParallel}}) {
    for (const auto& section : sim::detail::checkpoint_fingerprint(
             scenario.system(), placement, cfg, kind, cfg.shards)) {
      manifest.add_fingerprint(
          section.first == "engine" ? engine : section.first, section.second);
    }
  }

  // Wall-clock metrics: generous thresholds (only catastrophic regressions
  // fail across machines).  Workload metrics: deterministic modulo libm
  // rounding across toolchains, so a tight-but-nonzero threshold.
  bench::BenchArtifact artifact("throughput");
  artifact.set("seq_requests_per_sec", seq.requests_per_sec, "req/s",
               /*higher_is_better=*/true, /*threshold_pct=*/65.0);
  artifact.set("par_requests_per_sec", par.requests_per_sec, "req/s", true,
               65.0);
  artifact.set("parallel_speedup", speedup, "x", true, 90.0);
  artifact.set("seq_local_ratio", seq.report.local_ratio, "ratio", true, 2.0);
  artifact.set("seq_mean_cost_hops", seq.report.mean_cost_hops, "hops",
               /*higher_is_better=*/false, 2.0);
  artifact.set("par_local_ratio", par.report.local_ratio, "ratio", true, 2.0);
  artifact.set("par_mean_cost_hops", par.report.mean_cost_hops, "hops", false,
               2.0);
  artifact.set("cache_probe_ops_per_sec", probe_rate, "ops/s", true, 65.0);
  artifact.set("batch_gen_requests_per_sec", batch_rate, "req/s", true, 65.0);
  artifact.write_json_file(out_path, manifest);
  std::cout << "artifact: " << out_path << '\n';
  return 0;
}
