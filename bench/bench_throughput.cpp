// Simulator throughput bench — requests/sec of the sequential reference
// engine and the parallel sharded engine on the paper's full scenario
// (N = 50, M = 200, pure-caching placement so the measurement is
// simulate-dominated, not placement-dominated).
//
// Writes a schema-versioned BENCH_throughput.json artifact (see
// bench/bench_artifact.h) with an embedded provenance manifest; the CI
// regression gate diffs it against bench/baselines/BENCH_throughput.json
// with scripts/check_bench_regression.py.
//
// Wall-clock metrics carry generous thresholds (machines differ); the
// workload metrics (local ratio, mean hop cost) are deterministic in
// (seed, shards) — the shard count is pinned here for exactly that reason —
// and carry tight thresholds, so a silent change to the request stream or
// the cache model fails the gate even when the run happens to be fast.
//
// Usage: bench_throughput [--smoke] [artifact.json]
//   --smoke  500k requests instead of 5M (sanitizer/CI-PR runs).

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

#include "bench/bench_artifact.h"
#include "bench/bench_support.h"
#include "src/obs/run_manifest.h"
#include "src/placement/fixed_split.h"
#include "src/sim/sim_checkpoint.h"
#include "src/sim/simulator.h"
#include "src/util/table.h"

namespace {

using namespace cdn;

struct EngineRun {
  sim::SimulationReport report;
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
};

EngineRun run_engine(const sys::CdnSystem& system,
                     const placement::PlacementResult& placement,
                     sim::SimulationConfig cfg, std::size_t threads) {
  cfg.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  EngineRun run{sim::simulate(system, placement, cfg)};
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.requests_per_sec =
      run.wall_seconds > 0.0
          ? static_cast<double>(cfg.total_requests) / run.wall_seconds
          : 0.0;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_throughput.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  std::cout << "Simulator throughput: sequential vs parallel sharded engine\n";

  core::Scenario scenario(bench::paper_config(0.05, 0.0));
  const auto placement = placement::pure_caching(scenario.system());

  sim::SimulationConfig cfg;
  cfg.total_requests = smoke ? 500'000 : 5'000'000;
  cfg.warmup_fraction = 0.3;
  cfg.seed = 99;
  cfg.shards = 8;  // pinned: parallel results are deterministic in
                   // (seed, shards), never in the machine's core count

  const auto seq = run_engine(scenario.system(), placement, cfg, 1);
  const auto par = run_engine(scenario.system(), placement, cfg, 0);
  const double speedup =
      par.requests_per_sec > 0.0 && seq.requests_per_sec > 0.0
          ? par.requests_per_sec / seq.requests_per_sec
          : 0.0;

  util::TextTable table(
      {"engine", "wall_s", "req/s", "local%", "hops/req", "digest"});
  for (const auto& [name, run] :
       {std::pair<const char*, const EngineRun&>{"sequential", seq},
        std::pair<const char*, const EngineRun&>{"parallel", par}}) {
    std::ostringstream digest;
    digest << std::hex << std::setfill('0') << std::setw(16)
           << sim::report_digest(run.report);
    table.add_row({name, util::format_double(run.wall_seconds, 2),
                   util::format_double(run.requests_per_sec, 0),
                   util::format_double(100.0 * run.report.local_ratio, 2),
                   util::format_double(run.report.mean_cost_hops, 4),
                   digest.str()});
  }
  std::cout << table.str() << "parallel speedup "
            << util::format_double(speedup, 2) << "x\n";

  obs::RunManifest manifest =
      obs::make_run_manifest(smoke ? "bench_throughput --smoke"
                                   : "bench_throughput");
  manifest.seed = cfg.seed;
  manifest.threads = 0;
  manifest.shards = cfg.shards;
  for (const auto& [engine, kind] :
       {std::pair<const char*, sim::detail::EngineKind>{
            "engine/sequential", sim::detail::EngineKind::kSequential},
        std::pair<const char*, sim::detail::EngineKind>{
            "engine/parallel", sim::detail::EngineKind::kParallel}}) {
    for (const auto& section : sim::detail::checkpoint_fingerprint(
             scenario.system(), placement, cfg, kind, cfg.shards)) {
      manifest.add_fingerprint(
          section.first == "engine" ? engine : section.first, section.second);
    }
  }

  // Wall-clock metrics: generous thresholds (only catastrophic regressions
  // fail across machines).  Workload metrics: deterministic modulo libm
  // rounding across toolchains, so a tight-but-nonzero threshold.
  bench::BenchArtifact artifact("throughput");
  artifact.set("seq_requests_per_sec", seq.requests_per_sec, "req/s",
               /*higher_is_better=*/true, /*threshold_pct=*/65.0);
  artifact.set("par_requests_per_sec", par.requests_per_sec, "req/s", true,
               65.0);
  artifact.set("parallel_speedup", speedup, "x", true, 90.0);
  artifact.set("seq_local_ratio", seq.report.local_ratio, "ratio", true, 2.0);
  artifact.set("seq_mean_cost_hops", seq.report.mean_cost_hops, "hops",
               /*higher_is_better=*/false, 2.0);
  artifact.set("par_local_ratio", par.report.local_ratio, "ratio", true, 2.0);
  artifact.set("par_mean_cost_hops", par.report.mean_cost_hops, "hops", false,
               2.0);
  artifact.write_json_file(out_path, manifest);
  std::cout << "artifact: " << out_path << '\n';
  return 0;
}
