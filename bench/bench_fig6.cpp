// Figure 6 — "Accuracy of the LRU hit ratio approximation": the average
// cost per request (hops) predicted by the greedy algorithm's analytical
// model vs the cost measured by the trace-driven simulation, over
// (capacity %, uncacheable %) in {5, 10, 20} x {0, 10}.  The paper reports
// the model slightly overestimating the cost with an overall error < 7%.
//
// Besides the textual table, the run dumps the predicted/actual series —
// plus the full per-setting placement and simulation metrics — through the
// observability JSON exporter (argv[1] overrides the output path).

#include <iostream>
#include <vector>

#include "bench/bench_support.h"
#include "src/obs/registry.h"
#include "src/placement/hybrid_greedy.h"
#include "src/util/stats.h"

int main(int argc, char** argv) {
  using namespace cdn;
  std::cout << "Figure 6: predicted vs actual average cost per request "
               "(hybrid greedy)\n\n";

  const std::string metrics_path = argc > 1 ? argv[1] : "fig6_metrics.json";
  obs::Registry registry;
  obs::Series& predicted_out = registry.series("fig6/predicted_hops");
  obs::Series& actual_out = registry.series("fig6/actual_hops");
  obs::Table& settings_out = registry.table(
      "fig6/settings", {"capacity_pct", "uncacheable_pct", "predicted_hops",
                        "actual_hops", "error_pct"});

  util::TextTable table({"capacity%", "uncacheable%", "predicted_hops",
                         "actual_hops", "error%"});
  std::vector<double> predicted_series, actual_series;

  const std::vector<std::pair<double, double>> settings{
      {0.05, 0.0}, {0.10, 0.0}, {0.20, 0.0},
      {0.05, 0.1}, {0.10, 0.1}, {0.20, 0.1}};

  for (const auto& [capacity, lambda] : settings) {
    const std::string tag = "fig6/cap" + util::format_double(capacity * 100, 0) +
                            "_lam" + util::format_double(lambda * 100, 0);
    core::Scenario scenario(bench::paper_config(capacity, lambda));
    placement::HybridGreedyOptions popt;
    popt.metrics = &registry;
    popt.metrics_prefix = tag + "/placement/";
    const auto placement =
        placement::hybrid_greedy(scenario.system(), popt);
    auto sim_cfg = bench::paper_sim();
    sim_cfg.staleness = sim::StalenessMode::kRefresh;
    sim_cfg.metrics = &registry;
    sim_cfg.metrics_prefix = tag + "/sim/";
    sim_cfg.per_server_metrics = false;  // 6 settings x 50 servers is noise
    const auto report = sim::simulate(scenario.system(), placement, sim_cfg);

    const double predicted = placement.predicted_cost_per_request;
    const double actual = report.mean_cost_hops;
    const double error_pct = 100.0 * (predicted - actual) / actual;
    predicted_series.push_back(predicted);
    actual_series.push_back(actual);
    predicted_out.push(predicted);
    actual_out.push(actual);
    settings_out.add_row(
        {capacity * 100, lambda * 100, predicted, actual, error_pct});
    table.add_row({util::format_double(capacity * 100, 0),
                   util::format_double(lambda * 100, 0),
                   util::format_double(predicted, 4),
                   util::format_double(actual, 4),
                   util::format_double(error_pct, 2)});
  }

  std::cout << table.str() << '\n';
  const double overall =
      util::mean_relative_error(actual_series, predicted_series);
  registry.gauge("fig6/overall_mean_relative_error").set(overall);
  obs::write_json_file(registry, metrics_path);
  std::cout << "overall mean relative error: "
            << util::format_double(100.0 * overall, 2)
            << "% (paper: < 7%)\n"
            << "metrics: " << metrics_path << '\n';
  return overall < 0.07 ? 0 : 1;
}
