// Figure 6 — "Accuracy of the LRU hit ratio approximation": the average
// cost per request (hops) predicted by the greedy algorithm's analytical
// model vs the cost measured by the trace-driven simulation, over
// (capacity %, uncacheable %) in {5, 10, 20} x {0, 10}.  The paper reports
// the model slightly overestimating the cost with an overall error < 7%.

#include <iostream>
#include <vector>

#include "bench/bench_support.h"
#include "src/placement/hybrid_greedy.h"
#include "src/util/stats.h"

int main() {
  using namespace cdn;
  std::cout << "Figure 6: predicted vs actual average cost per request "
               "(hybrid greedy)\n\n";

  util::TextTable table({"capacity%", "uncacheable%", "predicted_hops",
                         "actual_hops", "error%"});
  std::vector<double> predicted_series, actual_series;

  const std::vector<std::pair<double, double>> settings{
      {0.05, 0.0}, {0.10, 0.0}, {0.20, 0.0},
      {0.05, 0.1}, {0.10, 0.1}, {0.20, 0.1}};

  for (const auto& [capacity, lambda] : settings) {
    core::Scenario scenario(bench::paper_config(capacity, lambda));
    const auto placement = placement::hybrid_greedy(scenario.system());
    auto sim_cfg = bench::paper_sim();
    sim_cfg.staleness = sim::StalenessMode::kRefresh;
    const auto report = sim::simulate(scenario.system(), placement, sim_cfg);

    const double predicted = placement.predicted_cost_per_request;
    const double actual = report.mean_cost_hops;
    predicted_series.push_back(predicted);
    actual_series.push_back(actual);
    table.add_row({util::format_double(capacity * 100, 0),
                   util::format_double(lambda * 100, 0),
                   util::format_double(predicted, 4),
                   util::format_double(actual, 4),
                   util::format_double(
                       100.0 * (predicted - actual) / actual, 2)});
  }

  std::cout << table.str() << '\n';
  const double overall =
      util::mean_relative_error(actual_series, predicted_series);
  std::cout << "overall mean relative error: "
            << util::format_double(100.0 * overall, 2)
            << "% (paper: < 7%)\n";
  return overall < 0.07 ? 0 : 1;
}
