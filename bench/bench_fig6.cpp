// Figure 6 — "Accuracy of the LRU hit ratio approximation": the average
// cost per request (hops) predicted by the greedy algorithm's analytical
// model vs the cost measured by the trace-driven simulation, over
// (capacity %, uncacheable %) in {5, 10, 20} x {0, 10}.  The paper reports
// the model slightly overestimating the cost with an overall error < 7%.
//
// Besides the textual table, the run dumps the predicted/actual series —
// plus the full per-setting placement and simulation metrics — through the
// observability JSON exporter (argv[1] overrides the output path).

#include <iostream>
#include <vector>

#include "bench/bench_artifact.h"
#include "bench/bench_support.h"
#include "src/obs/registry.h"
#include "src/obs/run_manifest.h"
#include "src/placement/hybrid_greedy.h"
#include "src/util/stats.h"

// Usage: bench_fig6 [--smoke] [metrics.json] [--artifact BENCH_fig6.json]
//   --smoke  200k requests on a pinned shard count and no accuracy gate —
//            fast enough for CI while keeping the measured error
//            deterministic, so the regression gate can track it instead.
int main(int argc, char** argv) {
  using namespace cdn;
  std::cout << "Figure 6: predicted vs actual average cost per request "
               "(hybrid greedy)\n\n";

  bool smoke = false;
  std::string metrics_path = "fig6_metrics.json";
  std::string artifact_path = "BENCH_fig6.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--artifact" && a + 1 < argc) {
      artifact_path = argv[++a];
    } else {
      metrics_path = arg;
    }
  }
  obs::Registry registry;
  obs::Series& predicted_out = registry.series("fig6/predicted_hops");
  obs::Series& actual_out = registry.series("fig6/actual_hops");
  obs::Table& settings_out = registry.table(
      "fig6/settings", {"capacity_pct", "uncacheable_pct", "predicted_hops",
                        "actual_hops", "error_pct"});

  util::TextTable table({"capacity%", "uncacheable%", "predicted_hops",
                         "actual_hops", "error%"});
  std::vector<double> predicted_series, actual_series;

  const std::vector<std::pair<double, double>> settings{
      {0.05, 0.0}, {0.10, 0.0}, {0.20, 0.0},
      {0.05, 0.1}, {0.10, 0.1}, {0.20, 0.1}};

  for (const auto& [capacity, lambda] : settings) {
    const std::string tag = "fig6/cap" + util::format_double(capacity * 100, 0) +
                            "_lam" + util::format_double(lambda * 100, 0);
    core::Scenario scenario(bench::paper_config(capacity, lambda));
    placement::HybridGreedyOptions popt;
    popt.metrics = &registry;
    popt.metrics_prefix = tag + "/placement/";
    const auto placement =
        placement::hybrid_greedy(scenario.system(), popt);
    auto sim_cfg = bench::paper_sim();
    if (smoke) {
      sim_cfg.total_requests = 1'000'000;
      sim_cfg.shards = 8;  // pinned: deterministic across core counts
    }
    sim_cfg.staleness = sim::StalenessMode::kRefresh;
    sim_cfg.metrics = &registry;
    sim_cfg.metrics_prefix = tag + "/sim/";
    sim_cfg.per_server_metrics = false;  // 6 settings x 50 servers is noise
    const auto report = sim::simulate(scenario.system(), placement, sim_cfg);

    const double predicted = placement.predicted_cost_per_request;
    const double actual = report.mean_cost_hops;
    const double error_pct = 100.0 * (predicted - actual) / actual;
    predicted_series.push_back(predicted);
    actual_series.push_back(actual);
    predicted_out.push(predicted);
    actual_out.push(actual);
    settings_out.add_row(
        {capacity * 100, lambda * 100, predicted, actual, error_pct});
    table.add_row({util::format_double(capacity * 100, 0),
                   util::format_double(lambda * 100, 0),
                   util::format_double(predicted, 4),
                   util::format_double(actual, 4),
                   util::format_double(error_pct, 2)});
  }

  std::cout << table.str() << '\n';
  const double overall =
      util::mean_relative_error(actual_series, predicted_series);
  registry.gauge("fig6/overall_mean_relative_error").set(overall);

  obs::RunManifest manifest =
      obs::make_run_manifest(smoke ? "bench_fig6 --smoke" : "bench_fig6");
  manifest.seed = 99;
  obs::write_json_file(registry, metrics_path, &manifest);

  bench::BenchArtifact artifact("fig6");
  // The model-vs-simulation error is deterministic in (seed, shards); the
  // threshold is relative to the error itself (~3-4%), so a genuine
  // accuracy regression trips it long before the paper's 7% bound.
  artifact.set("overall_mean_relative_error_pct", 100.0 * overall, "pct",
               /*higher_is_better=*/false, /*threshold_pct=*/15.0);
  const auto mean_of = [](const std::vector<double>& v) {
    double sum = 0.0;
    for (const double x : v) sum += x;
    return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
  };
  artifact.set("mean_predicted_hops", mean_of(predicted_series), "hops",
               false, 5.0);
  artifact.set("mean_actual_hops", mean_of(actual_series), "hops", false,
               5.0);
  artifact.write_json_file(artifact_path, manifest);

  std::cout << "overall mean relative error: "
            << util::format_double(100.0 * overall, 2)
            << "% (paper: < 7%)\n"
            << "metrics: " << metrics_path << '\n'
            << "artifact: " << artifact_path << '\n';
  // The smoke run's shorter stream inflates the error; the regression gate
  // tracks it against the committed baseline instead of a fixed bound.
  if (smoke) return 0;
  return overall < 0.07 ? 0 : 1;
}
