// Extension bench — adaptive replanning vs stale placement vs full re-run.
//
// Section 2.1's premise: replica placements must stay "fairly static"
// because creation/migration is expensive, which is why the hybrid keeps a
// cache.  The dynamic-FAP line of work ([24, 28]) replans instead.  This
// driver spikes one site 50x and compares, on the new demand:
//
//   * the stale hybrid placement (caches absorb what they can);
//   * adaptive replanning with free transfers;
//   * adaptive replanning with a high transfer charge (conservative);
//   * a from-scratch hybrid run (upper bound, ignores transfer cost).

#include <iostream>
#include <vector>

#include "bench/bench_support.h"
#include "src/placement/adaptive.h"
#include "src/placement/hybrid_greedy.h"

int main() {
  using namespace cdn;
  std::cout << "Adaptive replanning under a 50x flash crowd "
               "(5% capacity)\n\n";

  core::Scenario scenario(bench::paper_config(0.05, 0.0));
  const auto& system = scenario.system();
  const auto stale = placement::hybrid_greedy(system);
  auto sim_cfg = bench::paper_sim();

  // Site 0 (low popularity) goes 50x viral.
  std::vector<double> spiked;
  spiked.reserve(system.server_count() * system.site_count());
  for (std::size_t i = 0; i < system.server_count(); ++i) {
    const auto row = system.demand().row(static_cast<sys::ServerIndex>(i));
    for (std::size_t j = 0; j < row.size(); ++j) {
      spiked.push_back(j == 0 ? row[j] * 50.0 : row[j]);
    }
  }
  const auto new_demand = workload::DemandMatrix::from_values(
      system.server_count(), system.site_count(), spiked);
  const sys::CdnSystem new_system(scenario.catalog(), new_demand,
                                  scenario.distances(), 0.05);

  util::TextTable table({"strategy", "mean_ms", "hops/req", "kept", "added",
                         "dropped", "GB_moved"});
  auto add_row = [&](const std::string& name,
                     const placement::PlacementResult& p, std::size_t kept,
                     std::size_t added, std::size_t dropped,
                     std::uint64_t bytes) {
    const auto report = sim::simulate(new_system, p, sim_cfg);
    table.add_row({name, util::format_double(report.mean_latency_ms, 3),
                   util::format_double(report.mean_cost_hops, 4),
                   std::to_string(kept), std::to_string(added),
                   std::to_string(dropped),
                   util::format_double(static_cast<double>(bytes) / 1e9, 2)});
  };

  add_row("stale placement", stale, stale.replicas_created, 0, 0, 0);

  const auto free_replan =
      placement::adaptive_hybrid_replan(new_system, stale, {});
  add_row("adaptive (free transfer)", free_replan.result,
          free_replan.replicas_kept, free_replan.replicas_added,
          free_replan.replicas_dropped, free_replan.bytes_transferred);

  placement::AdaptiveOptions costly;
  costly.transfer_cost_per_byte = 2e-4;  // suppress marginal moves
  const auto costly_replan =
      placement::adaptive_hybrid_replan(new_system, stale, costly);
  add_row("adaptive (charged transfer)", costly_replan.result,
          costly_replan.replicas_kept, costly_replan.replicas_added,
          costly_replan.replicas_dropped, costly_replan.bytes_transferred);

  const auto scratch = placement::hybrid_greedy(new_system);
  std::uint64_t scratch_bytes = 0;
  for (std::size_t i = 0; i < system.server_count(); ++i) {
    for (std::size_t j = 0; j < system.site_count(); ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (scratch.placement.is_replicated(server, site) &&
          !stale.placement.is_replicated(server, site)) {
        scratch_bytes += system.site_bytes()[j];
      }
    }
  }
  add_row("from-scratch rerun", scratch, 0, scratch.replicas_created, 0,
          scratch_bytes);

  std::cout << table.str()
            << "\nReading: the caches already absorb most of the spike "
               "(the paper's core argument); replanning recovers the rest, "
               "and the transfer charge keeps the data moved small.\n";
  return 0;
}
