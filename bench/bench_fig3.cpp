// Figure 3 — "Performance comparison of different content delivery
// mechanisms (lambda = 0)": response-time CDFs of pure replication, pure
// caching, and the hybrid algorithm at 5% and 10% server capacity, with all
// objects cacheable.  Also prints the paper's headline mean-latency gains
// (hybrid ~40% over replication, ~5-15% over caching at full scale).

#include <iostream>

#include "bench/bench_support.h"

int main() {
  using namespace cdn;
  std::cout << "Figure 3: Replication vs Caching vs Hybrid (lambda = 0)\n";

  for (double capacity : {0.05, 0.10}) {
    core::Scenario scenario(bench::paper_config(capacity, /*lambda=*/0.0));
    const auto runs = core::run_mechanisms(
        scenario,
        {core::replication_mechanism(), core::caching_mechanism(),
         core::hybrid_mechanism()},
        bench::paper_sim());
    bench::print_panel("Figure 3(" + std::string(capacity == 0.05 ? "a" : "b") +
                           "): " + util::format_double(capacity * 100, 0) +
                           "% capacity, lambda = 0",
                       runs);
    std::cout << "hybrid vs replication: "
              << util::format_double(
                     core::mean_latency_gain_percent(runs[0], runs[2]), 1)
              << "% lower mean latency (paper: ~40%)\n"
              << "hybrid vs caching:     "
              << util::format_double(
                     core::mean_latency_gain_percent(runs[1], runs[2]), 1)
              << "% lower mean latency (paper: ~5-15%)\n";
  }
  return 0;
}
