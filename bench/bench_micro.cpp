// Micro-benchmarks (google-benchmark) for the hot primitives: cache
// operations, samplers, BFS, and the analytical model's inner loops.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/cache/cache_factory.h"
#include "src/cache/probe_table.h"
#include "src/core/experiment.h"
#include "src/core/scenario.h"
#include "src/model/characteristic_time.h"
#include "src/model/hit_ratio_curve.h"
#include "src/model/steady_state.h"
#include "src/obs/registry.h"
#include "src/placement/hybrid_greedy.h"
#include "src/placement/model_support.h"
#include "src/sim/simulator.h"
#include "src/topology/shortest_paths.h"
#include "src/topology/transit_stub.h"
#include "src/util/quantile_sketch.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"
#include "src/workload/request_stream.h"

namespace {

using namespace cdn;

void BM_LruAccessZipf(benchmark::State& state) {
  const auto policy = static_cast<cache::PolicyKind>(state.range(0));
  auto cache = cache::make_cache(policy, 10'000);
  const util::ZipfDistribution zipf(100'000, 1.0);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto key = static_cast<cache::ObjectKey>(zipf.sample(rng));
    benchmark::DoNotOptimize(cache->access(key, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruAccessZipf)
    ->Arg(static_cast<int>(cache::PolicyKind::kLru))
    ->Arg(static_cast<int>(cache::PolicyKind::kFifo))
    ->Arg(static_cast<int>(cache::PolicyKind::kLfu))
    ->Arg(static_cast<int>(cache::PolicyKind::kClock))
    ->Arg(static_cast<int>(cache::PolicyKind::kDelayedLru));

// The open-addressed probe behind the cache policies' hit path, isolated
// from eviction/recency bookkeeping.  Arg 0 = steady-state probes against a
// warm table; arg 1 adds insert+erase churn on every miss, exercising the
// backward-shift deletion path.
void BM_CacheProbe(benchmark::State& state) {
  cache::ProbeTable table;
  constexpr std::uint64_t kResident = 10'000;
  for (std::uint64_t k = 1; k <= kResident; ++k) {
    table.insert(k, static_cast<std::uint32_t>(k));
  }
  const util::ZipfDistribution zipf(100'000, 1.0);
  util::Rng rng(1);
  const bool churn = state.range(0) != 0;
  for (auto _ : state) {
    const auto key = static_cast<std::uint64_t>(zipf.sample(rng));
    const std::uint32_t slot = table.find(key);
    if (churn && slot == cache::ProbeTable::kNil) {
      table.insert(key, 0);
      table.erase(key);
    }
    benchmark::DoNotOptimize(slot);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbe)
    ->Arg(0)   // probe only (hit path)
    ->Arg(1);  // probe + insert/erase churn on misses

// SoA batch generation — the data-oriented hot loop's input stage.  Items
// are requests, so items_per_second is the generator's ceiling on engine
// throughput.
void BM_RequestBatchGen(benchmark::State& state) {
  core::ScenarioConfig cfg;
  cfg.server_count = 16;
  cfg.classes = {{10, 1.0, "low"}, {6, 4.0, "medium"}, {4, 16.0, "high"}};
  cfg.surge.objects_per_site = 200;
  cfg.storage_fraction = 0.05;
  cfg.seed = 2005;
  const core::Scenario scenario(cfg);
  workload::RequestStream stream(scenario.system().catalog(),
                                 scenario.system().demand(), 99);
  workload::RequestBatch batch;
  constexpr std::size_t kBatch = 4096;  // the engines' chunk size
  for (auto _ : state) {
    stream.next_batch(batch, kBatch);
    benchmark::DoNotOptimize(batch.rank.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_RequestBatchGen);

void BM_ZipfSample(benchmark::State& state) {
  const util::ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)),
                                    1.0);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_AliasSample(benchmark::State& state) {
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  const util::AliasSampler sampler(weights);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSample)->Arg(10000);

void BM_BfsTransitStub(benchmark::State& state) {
  util::Rng rng(4);
  const auto topo =
      topology::generate_transit_stub(topology::TransitStubParams{}, rng);
  util::Rng pick(5);
  for (auto _ : state) {
    const auto source = static_cast<topology::NodeId>(
        pick.uniform_index(topo.graph.node_count()));
    benchmark::DoNotOptimize(topology::bfs_hops(topo.graph, source));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(topo.graph.node_count()));
}
BENCHMARK(BM_BfsTransitStub);

void BM_CharacteristicTimeClosedForm(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::characteristic_time_closed_form(100'000, 0.7));
  }
}
BENCHMARK(BM_CharacteristicTimeClosedForm);

void BM_CharacteristicTimeExact(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::characteristic_time_exact(100'000, 0.7));
  }
}
BENCHMARK(BM_CharacteristicTimeExact);

// Per-server steady-state pricing cost of the placement tiers (the work a
// TierEvaluator table rebuild amortises across one iteration's candidates).
// Arg 0 = closed-form, arg 1 = Che (fixed-point solve + per-site N(z)).
void BM_SteadyStateTier(benchmark::State& state) {
  const auto tier = state.range(0) == 0 ? model::SteadyStateModel::kClosedForm
                                        : model::SteadyStateModel::kChe;
  constexpr std::size_t kSites = 256;
  const util::ZipfDistribution zipf(1000, 0.8);
  const model::HitRatioCurve curve(zipf);
  const model::OccupancyCurve occupancy(zipf);
  std::vector<double> popularity(kSites);
  std::vector<std::uint8_t> replicated(kSites, 0);
  std::vector<double> lambdas(kSites, 0.05);
  double total = 0.0;
  for (std::size_t j = 0; j < kSites; ++j) {
    popularity[j] = 1.0 / static_cast<double>(j + 1);
    total += popularity[j];
  }
  for (double& p : popularity) p /= total;
  replicated[3] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::steady_state_hit_ratios(
        tier, popularity, replicated, lambdas, zipf, curve, &occupancy,
        20'000));
  }
  state.SetItemsProcessed(state.iterations() * kSites);
}
BENCHMARK(BM_SteadyStateTier)->Arg(0)->Arg(1);

// Cold vs warm-started Che characteristic-time solve.  The warm case
// mirrors the engines' post-commit update: the previous K is a solution of
// a fixed point one replica away, so the bracket opens at [K/2, 2K].
void BM_CharacteristicTimeIncremental(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  constexpr std::size_t kSites = 256;
  const util::ZipfDistribution zipf(1000, 0.8);
  const model::OccupancyCurve occupancy(zipf);
  std::vector<double> weights(kSites);
  double total = 0.0;
  for (std::size_t j = 0; j < kSites; ++j) {
    weights[j] = 1.0 / static_cast<double>(j + 1);
    total += weights[j];
  }
  for (double& w : weights) w /= total;
  // The "previous commit" state: site 7's mass bypasses the cache and the
  // buffer lost the replica's slots.
  std::vector<double> prev = weights;
  prev[7] = 0.0;
  const double prev_k =
      model::che_characteristic_time(prev, occupancy, 19'000);
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    const auto solved = model::che_characteristic_time_warm(
        weights, occupancy, 20'000, warm ? prev_k : 0.0);
    benchmark::DoNotOptimize(solved.k);
    iterations += solved.iterations;
  }
  state.counters["fp_iters_per_solve"] =
      benchmark::Counter(static_cast<double>(iterations),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CharacteristicTimeIncremental)->Arg(0)->Arg(1);

void BM_HitRatioTableEvaluate(benchmark::State& state) {
  const util::ZipfDistribution zipf(1000, 1.0);
  const model::HitRatioCurve curve(zipf);
  double p = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.evaluate(p, 5000.0));
    p = p < 0.05 ? p * 1.01 : 1e-4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HitRatioTableEvaluate);

void BM_HitRatioExact(benchmark::State& state) {
  const util::ZipfDistribution zipf(1000, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::lru_hit_ratio_exact(zipf, 0.005, 5000.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HitRatioExact);

void BM_TopBProbability(benchmark::State& state) {
  const util::ZipfDistribution zipf(1000, 1.0);
  std::vector<double> weights(200);
  for (std::size_t j = 0; j < weights.size(); ++j) {
    weights[j] = 1.0 / static_cast<double>(j + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::top_b_cumulative_probability(
        weights, zipf, static_cast<std::uint64_t>(state.range(0))));
  }
}
BENCHMARK(BM_TopBProbability)->Arg(1000)->Arg(10000);

// End-to-end simulator throughput in requests/sec (items_per_second in the
// JSON output — the CI throughput artifact).  Arg 0 = engine threads:
// 1 is the sequential reference, 0 the parallel engine on all cores.
void BM_SimulateRequests(benchmark::State& state) {
  core::ScenarioConfig cfg;
  cfg.server_count = 16;
  cfg.classes = {{10, 1.0, "low"}, {6, 4.0, "medium"}, {4, 16.0, "high"}};
  cfg.surge.objects_per_site = 200;
  cfg.storage_fraction = 0.05;
  cfg.seed = 2005;
  const core::Scenario scenario(cfg);
  const auto placement =
      core::hybrid_mechanism(nullptr).build(scenario.system());

  sim::SimulationConfig sc;
  sc.total_requests = 500'000;
  sc.seed = 99;
  sc.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate(scenario.system(), placement, sc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sc.total_requests));
}
BENCHMARK(BM_SimulateRequests)
    ->Arg(1)   // sequential reference engine
    ->Arg(0)   // parallel sharded engine, all hardware threads
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// One Figure-2 candidate-benefit evaluation, with and without the
// precomputed miss-flow matrix (arg 1 = use the matrix).  The delta is the
// restructuring win the incremental engine banks on for every evaluation.
void BM_CandidateBenefit(benchmark::State& state) {
  core::ScenarioConfig cfg;
  cfg.server_count = 32;
  cfg.classes = {{12, 1.0, "low"}, {4, 8.0, "high"}};
  cfg.surge.objects_per_site = 100;
  cfg.storage_fraction = 0.05;
  cfg.seed = 2005;
  const core::Scenario scenario(cfg);
  const auto& system = scenario.system();

  const placement::ModelContext context(system);
  const auto states = context.make_states();
  const auto hit = placement::modeled_hit_matrix(states);
  const auto flow = placement::miss_flow_matrix(system, hit);
  const sys::ReplicaPlacement placement(system.server_storage(),
                                        system.site_bytes());
  const sys::NearestReplicaIndex nearest(system.distances(), placement);
  const bool use_flow = state.range(0) != 0;

  std::vector<std::pair<sys::ServerIndex, sys::SiteIndex>> feasible;
  for (sys::ServerIndex i = 0; i < system.server_count(); ++i) {
    for (sys::SiteIndex j = 0; j < system.site_count(); ++j) {
      if (placement.can_add(i, j)) feasible.emplace_back(i, j);
    }
  }

  std::size_t next = 0;
  for (auto _ : state) {
    const auto [i, j] = feasible[next];
    if (++next >= feasible.size()) next = 0;
    const double b =
        use_flow
            ? placement::hybrid_candidate_benefit(system, placement, nearest,
                                                  states[i], hit, flow.data(),
                                                  i, j)
            : placement::hybrid_candidate_benefit(system, placement, nearest,
                                                  states[i], hit, i, j);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CandidateBenefit)
    ->Arg(0)   // elementwise products recomputed per call
    ->Arg(1);  // precomputed miss-flow matrix

// Whole hybrid runs per engine; items = candidate evaluations, so
// items_per_second compares evaluation throughput and iterations compares
// wall-clock.  Arg 0 = engine (0 reference, 1 incremental).
void BM_HybridGreedyIteration(benchmark::State& state) {
  core::ScenarioConfig cfg;
  cfg.server_count = 48;
  cfg.classes = {{16, 1.0, "low"}, {8, 8.0, "high"}};
  cfg.surge.objects_per_site = 100;
  cfg.storage_fraction = 0.05;
  cfg.seed = 2005;
  const core::Scenario scenario(cfg);

  const auto engine = state.range(0) == 0
                          ? placement::PlacementEngine::kReference
                          : placement::PlacementEngine::kIncremental;
  std::int64_t candidates = 0;
  for (auto _ : state) {
    obs::Registry registry;
    placement::HybridGreedyOptions options;
    options.engine = engine;
    options.metrics = &registry;
    benchmark::DoNotOptimize(
        placement::hybrid_greedy(scenario.system(), options));
    if (const auto* c =
            registry.find_counter("placement/hybrid/candidates_evaluated")) {
      candidates += static_cast<std::int64_t>(c->value());
    }
  }
  state.SetItemsProcessed(candidates);
}
BENCHMARK(BM_HybridGreedyIteration)
    ->Arg(0)   // reference engine
    ->Arg(1)   // incremental lazy-heap engine
    ->Unit(benchmark::kMillisecond);

void BM_QuantileSketchAdd(benchmark::State& state) {
  util::QuantileSketch sketch(0.005);
  util::Rng rng(6);
  for (auto _ : state) {
    sketch.add(2.0 + 30.0 * rng.uniform());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantileSketchAdd);

}  // namespace

BENCHMARK_MAIN();
