// Shared configuration for the paper-figure benchmark drivers.
//
// Every bench_figN binary reconstructs the paper's Section 5.1 setup:
// a 1560-node GT-ITM-style transit-stub graph, N = 50 CDN servers, M = 200
// web sites (50 low / 100 medium / 50 high popularity), SURGE-like object
// populations with theta = 1.0, homogeneous server storage quoted as a
// percentage of the cumulative site bytes, and 2 ms/hop latency.

#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/scenario.h"

namespace cdn::bench {

/// The paper's full-scale scenario at a given capacity and lambda.
inline core::ScenarioConfig paper_config(double storage_fraction,
                                         double lambda,
                                         std::uint64_t seed = 2005) {
  core::ScenarioConfig cfg;  // defaults already encode N=50, M=200, L=1000
  cfg.storage_fraction = storage_fraction;
  cfg.uncacheable_fraction = lambda;
  cfg.seed = seed;
  return cfg;
}

/// Simulation length used by the figure drivers.  5M requests keep each
/// panel under ~10 s while leaving CDF noise well below the effects being
/// measured; override with HYBRIDCDN_BENCH_REQUESTS.
///
/// Healthy panels run the parallel sharded engine on every hardware thread
/// by default (fault panels auto-fall back to the sequential engine);
/// HYBRIDCDN_BENCH_THREADS=1 restores the sequential reference,
/// HYBRIDCDN_BENCH_SHARDS pins the shard count for reproducible parallel
/// results across machines.
inline sim::SimulationConfig paper_sim(std::uint64_t seed = 99) {
  sim::SimulationConfig sc;
  sc.total_requests = 5'000'000;
  if (const char* env = std::getenv("HYBRIDCDN_BENCH_REQUESTS")) {
    sc.total_requests = std::strtoull(env, nullptr, 10);
  }
  sc.threads = 0;  // all hardware threads
  if (const char* env = std::getenv("HYBRIDCDN_BENCH_THREADS")) {
    sc.threads = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("HYBRIDCDN_BENCH_SHARDS")) {
    sc.shards = std::strtoull(env, nullptr, 10);
  }
  sc.warmup_fraction = 0.3;
  sc.seed = seed;
  return sc;
}

/// Prints one figure panel: the summary table plus the response-time CDF
/// on a shared grid — the textual equivalent of the paper's plot.
inline void print_panel(const std::string& title,
                        const std::vector<core::MechanismRun>& runs) {
  std::cout << "\n=== " << title << " ===\n"
            << core::summary_table(runs).str() << '\n'
            << "Response-time CDF:\n"
            << core::cdf_table(runs) << std::flush;
}

}  // namespace cdn::bench
