// Schema-versioned bench artifacts (BENCH_*.json) with embedded run
// provenance — the file format the CI regression gate consumes (see
// docs/PERFORMANCE.md and scripts/check_bench_regression.py).
//
// Layout (schema_version 1):
//
//   {
//     "schema_version": 1,
//     "bench": "throughput",
//     "metrics": {
//       "seq_requests_per_sec": {
//         "value": 3.1e6, "unit": "req/s",
//         "higher_is_better": true, "threshold_pct": 65.0
//       }, ...
//     },
//     "manifest": { ...obs::RunManifest... }
//   }
//
// `threshold_pct` is the allowed regression (percent, in the bad direction
// given `higher_is_better`) before the gate fails; 0 demands an exact match
// in BOTH directions — use it for deterministic counts, where any drift
// means the algorithms changed, not the machine.

#pragma once

#include <fstream>
#include <map>
#include <string>
#include <utility>

#include "src/obs/json_writer.h"
#include "src/obs/run_manifest.h"
#include "src/util/error.h"

namespace cdn::bench {

struct BenchMetric {
  double value = 0.0;
  std::string unit;
  bool higher_is_better = false;
  /// Allowed regression in percent; 0 = exact match required.
  double threshold_pct = 5.0;
};

class BenchArtifact {
 public:
  static constexpr std::uint64_t kSchemaVersion = 1;

  explicit BenchArtifact(std::string bench_name)
      : name_(std::move(bench_name)) {}

  void set(const std::string& metric, double value, const std::string& unit,
           bool higher_is_better, double threshold_pct) {
    metrics_[metric] = {value, unit, higher_is_better, threshold_pct};
  }

  /// Renders the artifact; finalizes `manifest` (wall/cpu/RSS) first so the
  /// embedded provenance covers the whole bench run.
  std::string to_json(obs::RunManifest& manifest) const {
    manifest.finalize();
    obs::JsonWriter w;
    w.begin_object();
    w.key("schema_version");
    w.value(kSchemaVersion);
    w.key("bench");
    w.value(name_);
    w.key("metrics");
    w.begin_object();
    for (const auto& entry : metrics_) {
      w.key(entry.first);
      w.begin_object();
      w.key("value");
      w.value(entry.second.value);
      w.key("unit");
      w.value(entry.second.unit);
      w.key("higher_is_better");
      w.value(entry.second.higher_is_better);
      w.key("threshold_pct");
      w.value(entry.second.threshold_pct);
      w.end_object();
    }
    w.end_object();
    w.key("manifest");
    manifest.write_value(w);
    w.end_object();
    return w.str();
  }

  void write_json_file(const std::string& path,
                       obs::RunManifest& manifest) const {
    std::ofstream out(path, std::ios::trunc);
    CDN_EXPECT(out.good(), "cannot open bench artifact file: " + path);
    out << to_json(manifest) << '\n';
    out.flush();
    CDN_EXPECT(out.good(), "failed writing bench artifact file: " + path);
  }

 private:
  std::string name_;
  std::map<std::string, BenchMetric> metrics_;
};

}  // namespace cdn::bench
