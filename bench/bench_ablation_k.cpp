// Ablation A1 — p_B recomputation policy (DESIGN.md).
//
// The paper computes the top-B cumulative probability p_B once at
// initialisation and claims per-iteration recomputation "produced the same
// result": the renormalisation of the remaining sites' popularity roughly
// cancels the buffer shrinkage.  This driver runs the hybrid greedy both
// ways at 5% and 10% capacity and compares placements, predicted costs,
// simulated latency, and wall-clock time.

#include <chrono>
#include <iostream>

#include "bench/bench_support.h"
#include "src/placement/hybrid_greedy.h"

int main() {
  using namespace cdn;
  using Clock = std::chrono::steady_clock;
  std::cout << "Ablation A1: p_B once-at-init (paper) vs per-iteration\n\n";

  util::TextTable table({"capacity%", "pb_mode", "replicas", "pred_hops/req",
                         "sim_mean_ms", "algo_seconds"});

  for (double capacity : {0.05, 0.10}) {
    core::Scenario scenario(bench::paper_config(capacity, 0.0));
    for (const auto mode : {model::PbMode::kAtInit,
                            model::PbMode::kPerIteration}) {
      placement::HybridGreedyOptions options;
      options.pb_mode = mode;
      const auto t0 = Clock::now();
      const auto result = placement::hybrid_greedy(scenario.system(), options);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      const auto report =
          sim::simulate(scenario.system(), result, bench::paper_sim());
      table.add_row(
          {util::format_double(capacity * 100, 0),
           mode == model::PbMode::kAtInit ? "at-init" : "per-iteration",
           std::to_string(result.replicas_created),
           util::format_double(result.predicted_cost_per_request, 4),
           util::format_double(report.mean_latency_ms, 3),
           util::format_double(seconds, 2)});
    }
  }
  std::cout << table.str()
            << "\nExpectation (paper Section 4): the two modes agree to "
               "within noise; at-init is cheaper.\n";
  return 0;
}
