// Flow-engine bench — the analytical fast path (sim::SimEngine::kFlow)
// against the event engine on a grid of paper-scale scenarios
// (N = 50, M = 200; storage fraction and uncacheable fraction swept).
//
// Two things are measured and gated:
//
//   * Speed: total event wall-clock over the grid divided by total flow
//     wall-clock.  The flow engine exists to make parameter sweeps cheap,
//     so the bench hard-fails below 100x — if the analytical path is ever
//     that slow, it has lost its reason to exist.
//   * Fidelity: the worst absolute local-ratio gap and relative mean-hop
//     gap between the flow summary and the event engine's measured report
//     across the grid.  Both engines are deterministic in (seed, shards),
//     so drift here means a model or engine change, not machine noise.
//
// Writes a schema-versioned BENCH_flow.json artifact gated by
// scripts/check_bench_regression.py against bench/baselines/BENCH_flow.json.
//
// Usage: bench_flow [--smoke] [artifact.json]
//   --smoke  2 grid points at 500k event requests (sanitizer/CI-PR runs)
//            instead of 4 points at 5M.

#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_artifact.h"
#include "bench/bench_support.h"
#include "src/obs/run_manifest.h"
#include "src/placement/fixed_split.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "src/util/table.h"

namespace {

using namespace cdn;

double wall_of(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct GridPoint {
  double storage_fraction;
  double lambda;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_flow.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  std::cout << "Flow analytical engine vs event engine, paper-scale grid\n";

  std::vector<GridPoint> grid = {{0.01, 0.0}, {0.05, 0.0}};
  if (!smoke) {
    grid.push_back({0.15, 0.0});
    grid.push_back({0.05, 0.3});
  }

  double event_wall = 0.0;
  double flow_wall = 0.0;
  double flow_cf_wall = 0.0;
  std::uint64_t event_requests = 0;
  double max_local_gap = 0.0;
  double max_hops_rel_gap = 0.0;
  double flow_local_sum = 0.0;
  double event_local_sum = 0.0;

  util::TextTable table({"storage%", "lambda", "event req/s", "event local%",
                         "flow local%", "cf local%", "event wall_s",
                         "flow wall_s"});

  for (const GridPoint& point : grid) {
    const core::Scenario scenario(
        bench::paper_config(point.storage_fraction, point.lambda));
    const auto placement = placement::pure_caching(scenario.system());

    sim::SimulationConfig cfg;
    cfg.total_requests = smoke ? 500'000 : 5'000'000;
    cfg.warmup_fraction = 0.3;
    cfg.seed = 99;
    cfg.threads = 0;
    cfg.shards = 8;  // pinned: deterministic in (seed, shards)

    auto start = std::chrono::steady_clock::now();
    const auto event = sim::simulate(scenario.system(), placement, cfg);
    const double point_event_wall = wall_of(start);
    event_wall += point_event_wall;
    event_requests += cfg.total_requests;

    sim::SimulationConfig flow_cfg = cfg;
    flow_cfg.engine = sim::SimEngine::kFlow;
    flow_cfg.hit_model = sim::HitModel::kEmpirical;
    start = std::chrono::steady_clock::now();
    const auto flow = sim::simulate(scenario.system(), placement, flow_cfg);
    const double point_flow_wall = wall_of(start);
    flow_wall += point_flow_wall;

    // The closed-form tier rebuilds its hit-ratio curves per run; timing it
    // separately keeps that setup cost visible in the artifact.
    flow_cfg.hit_model = sim::HitModel::kClosedForm;
    start = std::chrono::steady_clock::now();
    const auto flow_cf = sim::simulate(scenario.system(), placement, flow_cfg);
    flow_cf_wall += wall_of(start);

    const double local_gap = std::abs(flow.local_ratio - event.local_ratio);
    max_local_gap = std::max(max_local_gap, local_gap);
    if (event.mean_cost_hops > 0.0) {
      max_hops_rel_gap = std::max(
          max_hops_rel_gap,
          std::abs(flow.mean_cost_hops - event.mean_cost_hops) /
              event.mean_cost_hops);
    }
    flow_local_sum += flow.local_ratio;
    event_local_sum += event.local_ratio;

    table.add_row(
        {util::format_double(100.0 * point.storage_fraction, 0),
         util::format_double(point.lambda, 2),
         util::format_double(
             point_event_wall > 0.0
                 ? static_cast<double>(cfg.total_requests) / point_event_wall
                 : 0.0,
             0),
         util::format_double(100.0 * event.local_ratio, 2),
         util::format_double(100.0 * flow.local_ratio, 2),
         util::format_double(100.0 * flow_cf.local_ratio, 2),
         util::format_double(point_event_wall, 3),
         util::format_double(point_flow_wall, 4)});
  }

  const double points = static_cast<double>(grid.size());
  const double speedup = flow_wall > 0.0 ? event_wall / flow_wall : 0.0;
  std::cout << table.str() << "flow speedup over event engine "
            << util::format_double(speedup, 0) << "x, max |local ratio gap| "
            << util::format_double(max_local_gap, 4) << '\n';
  CDN_EXPECT(speedup >= 100.0,
             "flow engine is less than 100x faster than the event engine");

  obs::RunManifest manifest =
      obs::make_run_manifest(smoke ? "bench_flow --smoke" : "bench_flow");
  manifest.seed = 99;
  manifest.threads = 0;
  manifest.shards = 8;

  // Wall-clock metrics carry generous thresholds (machines differ); the
  // fidelity gaps are deterministic modulo libm rounding, so tight ones.
  bench::BenchArtifact artifact("flow");
  artifact.set("event_requests_per_sec",
               event_wall > 0.0
                   ? static_cast<double>(event_requests) / event_wall
                   : 0.0,
               "req/s", /*higher_is_better=*/true, /*threshold_pct=*/65.0);
  artifact.set("flow_evals_per_sec",
               flow_wall > 0.0 ? points / flow_wall : 0.0, "evals/s", true,
               65.0);
  artifact.set("flow_closed_form_evals_per_sec",
               flow_cf_wall > 0.0 ? points / flow_cf_wall : 0.0, "evals/s",
               true, 65.0);
  artifact.set("flow_vs_event_speedup", speedup, "x", true, 90.0);
  artifact.set("max_local_ratio_abs_gap", max_local_gap, "ratio",
               /*higher_is_better=*/false, 25.0);
  artifact.set("max_mean_hops_rel_gap", max_hops_rel_gap, "ratio", false,
               25.0);
  artifact.set("flow_mean_local_ratio", flow_local_sum / points, "ratio",
               true, 2.0);
  artifact.set("event_mean_local_ratio", event_local_sum / points, "ratio",
               true, 2.0);
  artifact.write_json_file(out_path, manifest);
  std::cout << "artifact: " << out_path << '\n';
  return 0;
}
