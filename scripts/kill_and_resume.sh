#!/usr/bin/env bash
# Kill-and-resume integration check (docs/RECOVERY.md).
#
# Exercises the crash-safety contract end to end through the real CLI:
#
#   1. SIGKILL  — the hard-crash case.  The process dies with no chance to
#      flush, so resume starts from the last *periodic* checkpoint on disk.
#   2. SIGTERM  — the graceful case.  The engine flushes a final checkpoint,
#      the CLI exits with code 75 (resumable, not failed), and resume picks
#      up from the exact interrupt point.
#
# In both cases the resumed run's --report-digest must equal the digest of
# an uninterrupted reference run — byte-identical, not approximately equal.
# The kill point is randomized so repeated CI runs cover different offsets.
#
# Usage: scripts/kill_and_resume.sh [path/to/hybridcdn_cli]

set -euo pipefail

CLI=${1:-build/tools/hybridcdn_cli}
[[ -x "$CLI" ]] || { echo "error: $CLI is not executable" >&2; exit 1; }

WORK=$(mktemp -d "${TMPDIR:-/tmp}/hybridcdn_killresume.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# A run long enough that the kill reliably lands mid-flight, with faults
# active so the checkpoint carries failover state.
ARGS=(--servers 12 --low 10 --medium 20 --high 10 --objects 200
      --requests 20000000 --mechanisms hybrid --mtbf 400000 --slo-ms 100)
CADENCE=1000000

echo "== reference (uninterrupted) =="
"$CLI" "${ARGS[@]}" --report-digest >"$WORK/ref.txt" 2>/dev/null
REF=$(grep '^digest ' "$WORK/ref.txt" | awk '{print $3}')
echo "reference digest: $REF"

wait_for_checkpoint() {
  # Wait until at least one periodic checkpoint is on disk, plus a random
  # extra delay so the kill offset varies between runs.
  local ckpt=$1 pid=$2
  for _ in $(seq 1 200); do
    [[ -s "$ckpt" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "run exited early" >&2; return 1; }
    sleep 0.05
  done
  [[ -s "$ckpt" ]] || { echo "no checkpoint appeared" >&2; return 1; }
  sleep "0.$((RANDOM % 8))"
}

resume_and_compare() {
  local ckpt=$1 label=$2
  "$CLI" "${ARGS[@]}" --resume "$ckpt" --report-digest \
    >"$WORK/$label.txt" 2>/dev/null
  local got
  got=$(grep '^digest ' "$WORK/$label.txt" | awk '{print $3}')
  echo "$label resumed digest: $got"
  if [[ "$got" != "$REF" ]]; then
    echo "FAIL: $label resume digest $got != reference $REF" >&2
    exit 1
  fi
}

echo "== SIGKILL (hard crash, resume from last periodic checkpoint) =="
CKPT=$WORK/hard.ckpt
"$CLI" "${ARGS[@]}" --checkpoint-out "$CKPT" \
  --checkpoint-every-requests "$CADENCE" >/dev/null 2>&1 &
PID=$!
wait_for_checkpoint "$CKPT" "$PID"
kill -KILL "$PID"
wait "$PID" 2>/dev/null && { echo "FAIL: run survived SIGKILL" >&2; exit 1; }
resume_and_compare "$CKPT" "sigkill"

echo "== SIGTERM (graceful shutdown, exit code 75) =="
CKPT=$WORK/graceful.ckpt
"$CLI" "${ARGS[@]}" --checkpoint-out "$CKPT" \
  --checkpoint-every-requests "$CADENCE" >/dev/null 2>"$WORK/graceful.err" &
PID=$!
wait_for_checkpoint "$CKPT" "$PID"
kill -TERM "$PID"
set +e
wait "$PID"
CODE=$?
set -e
if [[ "$CODE" -ne 75 ]]; then
  echo "FAIL: graceful shutdown exited $CODE, expected 75" >&2
  cat "$WORK/graceful.err" >&2
  exit 1
fi
grep -q '^interrupted:' "$WORK/graceful.err" || {
  echo "FAIL: no interrupt message on stderr" >&2; exit 1; }
resume_and_compare "$CKPT" "sigterm"

echo "== parallel engine (SIGTERM, resume with a different thread count) =="
CKPT=$WORK/parallel.ckpt
PARGS=("${ARGS[@]}" --threads 4 --shards 8)
"$CLI" "${PARGS[@]}" --report-digest >"$WORK/pref.txt" 2>/dev/null
PREF=$(grep '^digest ' "$WORK/pref.txt" | awk '{print $3}')
"$CLI" "${PARGS[@]}" --checkpoint-out "$CKPT" \
  --checkpoint-every-requests "$CADENCE" >/dev/null 2>&1 &
PID=$!
wait_for_checkpoint "$CKPT" "$PID"
kill -TERM "$PID"
set +e
wait "$PID"
CODE=$?
set -e
[[ "$CODE" -eq 75 ]] || { echo "FAIL: parallel exited $CODE" >&2; exit 1; }
"$CLI" "${PARGS[@]}" --threads 2 --resume "$CKPT" --report-digest \
  >"$WORK/par.txt" 2>/dev/null
PGOT=$(grep '^digest ' "$WORK/par.txt" | awk '{print $3}')
echo "parallel resumed digest: $PGOT (reference $PREF)"
if [[ "$PGOT" != "$PREF" ]]; then
  echo "FAIL: parallel resume digest $PGOT != reference $PREF" >&2
  exit 1
fi

echo "PASS: all resumed digests are byte-identical to their references"
