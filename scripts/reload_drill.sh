#!/usr/bin/env bash
# Reload-under-load drill (docs/REDIRECTOR.md).
#
# Proves the daemon's live-reconfiguration contract against the real
# binaries, with redirect_load hammering the data plane the whole time:
#
#   1. >=5 placement RELOADs via the control socket while the load runs —
#      every reply OK, STATUS generation strictly increasing;
#   2. one malformed RELOAD mid-drill — the reply is ERR and STATUS shows
#      the same generation and placement digest as before the attempt
#      (the old config kept serving, nothing half-applied);
#   3. redirect_load exits 0: zero transport failures and zero protocol
#      errors across every swap — no request was dropped or hung.
#
# Usage: scripts/reload_drill.sh [build-dir]   (default: build)

set -euo pipefail

BUILD=${1:-build}
REDIRECTD="$BUILD/tools/redirectd"
LOAD="$BUILD/tools/redirect_load"
for bin in "$REDIRECTD" "$LOAD"; do
  [[ -x "$bin" ]] || { echo "error: $bin is not executable" >&2; exit 1; }
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/hybridcdn_reload_drill.XXXXXX")
DAEMON_PID=""
LOAD_PID=""
cleanup() {
  [[ -n "$LOAD_PID" ]] && kill "$LOAD_PID" 2>/dev/null || true
  [[ -n "$DAEMON_PID" ]] && kill "$DAEMON_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# The scenario both the daemon and the load generator must agree on.
SCENARIO=(--servers 20 --low 10 --medium 20 --high 10 --objects 200
          --seed 2005)

wait_for_line() {  # wait_for_line <file> <token>
  local file=$1 token=$2
  for _ in $(seq 1 100); do
    grep -q "$token" "$file" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "error: '$token' never appeared in $file" >&2
  return 1
}

# One control-socket exchange per call; replies land on stdout.
control() {  # control <command...>
  local fd
  exec {fd}<>"/dev/tcp/127.0.0.1/$CONTROL_PORT"
  printf '%s\n' "$*" >&"$fd"
  local reply
  IFS= read -r -t 10 reply <&"$fd"
  exec {fd}>&-
  printf '%s\n' "$reply"
}

status_field() {  # status_field <status-line> <key>
  sed -n "s/.* $2=\([^ ]*\).*/\1/p" <<<"$1"
}

echo "== plan files (two valid mechanisms + one malformed) =="
# Each --dump-placement daemon writes its plan at startup; SIGTERM right
# after LISTENING.
for mech in hybrid replication; do
  "$REDIRECTD" "${SCENARIO[@]}" --storage 0.05 --mechanism "$mech" \
    --port 0 --dump-placement "$WORK/plan_$mech.txt" \
    > "$WORK/dump_$mech.out" 2>/dev/null &
  pid=$!
  wait_for_line "$WORK/dump_$mech.out" LISTENING
  kill -TERM "$pid"; wait "$pid" || true
done
printf 'placement 20 40\nreplica 0 bogus\n' > "$WORK/plan_bad.txt"
wc -l "$WORK"/plan_*.txt

echo "== daemon =="
"$REDIRECTD" "${SCENARIO[@]}" --storage 0.05 --port 0 --control-port 0 \
  > "$WORK/daemon.out" 2> "$WORK/daemon.err" &
DAEMON_PID=$!
wait_for_line "$WORK/daemon.out" LISTENING
wait_for_line "$WORK/daemon.out" CONTROL
DATA_PORT=$(awk '/^LISTENING/ {print $2}' "$WORK/daemon.out")
CONTROL_PORT=$(awk '/^CONTROL/ {print $2}' "$WORK/daemon.out")
echo "data port $DATA_PORT, control port $CONTROL_PORT"

echo "== load (runs across every swap) =="
"$LOAD" "${SCENARIO[@]}" --port "$DATA_PORT" \
  --requests 400000 --connections 8 --pipeline 16 \
  > "$WORK/load.out" 2> "$WORK/load.err" &
LOAD_PID=$!
sleep 0.5  # let the load ramp before the first swap

echo "== 6 reloads + 1 malformed, generation must stay monotone =="
LAST_GENERATION=1
for swap in 1 2 3 4 5 6; do
  if (( swap % 2 == 1 )); then plan="$WORK/plan_replication.txt";
  else plan="$WORK/plan_hybrid.txt"; fi
  REPLY=$(control "RELOAD placement $plan")
  [[ "$REPLY" == OK* ]] || { echo "FAIL: swap $swap: $REPLY" >&2; exit 1; }
  STATUS=$(control STATUS)
  GENERATION=$(status_field "$STATUS" generation)
  if (( GENERATION <= LAST_GENERATION )); then
    echo "FAIL: generation $GENERATION did not advance past $LAST_GENERATION" >&2
    exit 1
  fi
  LAST_GENERATION=$GENERATION
  echo "swap $swap -> $REPLY"

  if (( swap == 3 )); then
    BEFORE=$(control STATUS)
    BAD_REPLY=$(control "RELOAD placement $WORK/plan_bad.txt")
    [[ "$BAD_REPLY" == ERR* ]] || {
      echo "FAIL: malformed reload was accepted: $BAD_REPLY" >&2; exit 1; }
    AFTER=$(control STATUS)
    for key in generation placement_digest; do
      B=$(status_field "$BEFORE" "$key") A=$(status_field "$AFTER" "$key")
      [[ "$B" == "$A" ]] || {
        echo "FAIL: $key changed across a failed reload: $B -> $A" >&2
        exit 1; }
    done
    echo "malformed reload rejected -> $BAD_REPLY (digest preserved)"
  fi
  sleep 0.2
done

echo "== load must finish clean =="
if ! wait "$LOAD_PID"; then
  echo "FAIL: redirect_load exited nonzero" >&2
  sed -n '1,20p' "$WORK/load.err" >&2
  exit 1
fi
LOAD_PID=""
grep -E '^(requests|redirects/s|errors|replica_p50_ms|origin_p50_ms)' "$WORK/load.out"
ERRORS=$(awk '/^errors/ {print $2}' "$WORK/load.out")
[[ "$ERRORS" == 0 ]] || { echo "FAIL: $ERRORS protocol errors" >&2; exit 1; }

FINAL=$(control STATUS)
echo "final $FINAL"
[[ "$(status_field "$FINAL" generation)" == 7 ]] || {
  echo "FAIL: expected final generation 7" >&2; exit 1; }
[[ "$(status_field "$FINAL" reloads)" == 6 ]] || {
  echo "FAIL: expected 6 applied reloads" >&2; exit 1; }
[[ "$(status_field "$FINAL" reload_failures)" == 1 ]] || {
  echo "FAIL: expected 1 failed reload" >&2; exit 1; }

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
DAEMON_PID=""
echo "PASS: 6 swaps + 1 rejected reload under load, generations 1..7 monotone"
