#!/usr/bin/env python3
"""CI gate for schema-versioned bench artifacts (BENCH_*.json).

Compares a candidate artifact against a committed baseline
(bench/baselines/) metric by metric.  Each baseline metric carries its own
`threshold_pct` and `higher_is_better` direction:

  * change in the GOOD direction         -> pass (improvements are free)
  * change in the bad direction <= thr   -> pass (noise allowance)
  * change in the bad direction  > thr   -> FAIL
  * threshold_pct == 0                   -> any change, either direction,
                                            beyond 1e-9 relative -> FAIL
                                            (exact/deterministic metrics)
  * metric missing from the candidate    -> FAIL (silently dropping a
                                            gated metric is itself a
                                            regression)

Extra metrics in the candidate are reported but never fail — add them to
the baseline to start gating them.

Usage:
  check_bench_regression.py BASELINE CANDIDATE [--update]
  check_bench_regression.py --self-test

Exit codes: 0 = pass, 1 = regression or schema error, 2 = usage error.
`--update` rewrites the baseline's metric values (keeping thresholds) from
the candidate — the documented way to bless a new baseline, see
docs/PERFORMANCE.md.
"""

import json
import sys

SCHEMA_VERSION = 1
EXACT_EPS = 1e-9


def load_artifact(path):
    with open(path) as fh:
        doc = json.load(fh)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r}, expected {SCHEMA_VERSION}"
        )
    if "bench" not in doc or not isinstance(doc.get("metrics"), dict):
        raise ValueError(f"{path}: missing 'bench' or 'metrics'")
    return doc


def relative_change(baseline, candidate):
    """Signed relative change, positive = candidate larger."""
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return (candidate - baseline) / abs(baseline)


def compare(baseline, candidate, log=print):
    """Returns a list of failure strings (empty = pass)."""
    failures = []
    if baseline["bench"] != candidate["bench"]:
        failures.append(
            f"bench name mismatch: baseline {baseline['bench']!r} vs "
            f"candidate {candidate['bench']!r}"
        )
        return failures

    base_tool = baseline.get("manifest", {}).get("tool")
    cand_tool = candidate.get("manifest", {}).get("tool")
    if base_tool and cand_tool and base_tool != cand_tool:
        log(
            f"  note: manifest tool differs ({base_tool!r} vs {cand_tool!r})"
            " — comparing a different invocation mode?"
        )

    cand_metrics = candidate["metrics"]
    for name, spec in sorted(baseline["metrics"].items()):
        if name not in cand_metrics:
            failures.append(f"{name}: missing from candidate")
            continue
        base_value = float(spec["value"])
        cand_value = float(cand_metrics[name]["value"])
        higher_is_better = bool(spec.get("higher_is_better", False))
        threshold_pct = float(spec.get("threshold_pct", 0.0))
        change = relative_change(base_value, cand_value)
        # Positive `bad` = movement in the regressing direction.
        bad = -change if higher_is_better else change

        unit = spec.get("unit", "")
        desc = (
            f"{name}: {base_value:g} -> {cand_value:g} {unit}"
            f" ({change * 100.0:+.2f}%)"
        )
        if threshold_pct == 0.0:
            if abs(change) > EXACT_EPS:
                failures.append(f"{desc}, expected exact match")
            else:
                log(f"  ok    {desc} [exact]")
        elif bad * 100.0 > threshold_pct:
            failures.append(f"{desc}, exceeds {threshold_pct:g}% threshold")
        else:
            log(f"  ok    {desc} [<= {threshold_pct:g}%]")

    for name in sorted(set(cand_metrics) - set(baseline["metrics"])):
        log(f"  note: {name} not in baseline (ungated)")
    return failures


def update_baseline(baseline_path, baseline, candidate):
    """Blesses candidate values into the baseline, keeping its thresholds
    and directions; copies over new metrics and the fresh manifest."""
    for name, spec in candidate["metrics"].items():
        if name in baseline["metrics"]:
            baseline["metrics"][name]["value"] = spec["value"]
        else:
            baseline["metrics"][name] = spec
    if "manifest" in candidate:
        baseline["manifest"] = candidate["manifest"]
    with open(baseline_path, "w") as fh:
        json.dump(baseline, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"updated baseline: {baseline_path}")


def self_test():
    """Negative test: an injected over-threshold regression must fail, and
    sub-threshold noise / improvements / exact matches must pass."""
    baseline = {
        "schema_version": 1,
        "bench": "selftest",
        "metrics": {
            "throughput": {
                "value": 100.0,
                "unit": "req/s",
                "higher_is_better": True,
                "threshold_pct": 10.0,
            },
            "latency": {
                "value": 10.0,
                "unit": "ms",
                "higher_is_better": False,
                "threshold_pct": 10.0,
            },
            "replicas": {
                "value": 42.0,
                "unit": "count",
                "higher_is_better": True,
                "threshold_pct": 0.0,
            },
        },
    }

    def run(mutate):
        cand = json.loads(json.dumps(baseline))
        mutate(cand["metrics"])
        return compare(baseline, cand, log=lambda *_: None)

    cases = [
        # (description, mutation, should_fail)
        ("unchanged candidate passes", lambda m: None, False),
        (
            "injected 20% throughput drop fails (> 10% threshold)",
            lambda m: m["throughput"].update(value=80.0),
            True,
        ),
        (
            "5% throughput drop passes (<= 10% threshold)",
            lambda m: m["throughput"].update(value=95.0),
            False,
        ),
        (
            "throughput improvement passes",
            lambda m: m["throughput"].update(value=200.0),
            False,
        ),
        (
            "injected 20% latency rise fails (lower-is-better)",
            lambda m: m["latency"].update(value=12.0),
            True,
        ),
        (
            "latency improvement passes",
            lambda m: m["latency"].update(value=5.0),
            False,
        ),
        (
            "exact metric drift fails in either direction",
            lambda m: m["replicas"].update(value=43.0),
            True,
        ),
        (
            "missing gated metric fails",
            lambda m: m.pop("latency"),
            True,
        ),
    ]
    ok = True
    for desc, mutate, should_fail in cases:
        failures = run(mutate)
        got_fail = bool(failures)
        status = "ok" if got_fail == should_fail else "SELF-TEST BUG"
        if got_fail != should_fail:
            ok = False
        print(f"  {status}: {desc}")
    print("self-test " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main(argv):
    if "--self-test" in argv:
        return self_test()
    args = [a for a in argv if a != "--update"]
    update = "--update" in argv
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, candidate_path = args
    try:
        baseline = load_artifact(baseline_path)
        candidate = load_artifact(candidate_path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    print(f"bench {baseline['bench']}: {baseline_path} vs {candidate_path}")
    failures = compare(baseline, candidate)
    for f in failures:
        print(f"  FAIL  {f}")
    if update:
        update_baseline(baseline_path, baseline, candidate)
        return 0
    if failures:
        print(f"{len(failures)} regression(s) detected")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
