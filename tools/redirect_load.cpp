// redirect_load — replay client for the redirector daemon.
//
// Opens N connections to a running redirectd, replays the scenario's
// synthetic request stream (same catalog/demand/Zipf draw as the
// simulator) and reports sustained redirects/sec plus answer-latency
// percentiles.  With --min-rate it doubles as an assertion: exit 1 when
// the measured rate falls short (the CI perf gate).
//
// Examples:
//   redirect_load --port 9700 --requests 200000 --connections 16
//   redirect_load --port 9700 --min-rate 10000 --pipeline 8

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/core/hybridcdn.h"
#include "src/net/socket.h"
#include "src/redirectd/protocol.h"
#include "src/util/cli.h"

namespace {

using namespace cdn;

struct WorkerResult {
  std::uint64_t replica = 0;
  std::uint64_t origin = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t errors = 0;
  std::vector<std::uint64_t> latency_ns;
  // Per-answer-type latencies: a degraded fleet answers ORIGIN/UNAVAILABLE
  // on a different path (retry/backoff budget) than healthy REPLICA wins,
  // and one pooled percentile hides that split.
  std::vector<std::uint64_t> replica_ns;
  std::vector<std::uint64_t> origin_ns;
  std::vector<std::uint64_t> unavailable_ns;
  bool transport_failed = false;
};

double percentile_ms(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return static_cast<double>(sorted[idx]) * 1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "redirect_load — throughput/latency replay client for redirectd");
  cli.add_flag("host", "127.0.0.1", "daemon address");
  cli.add_flag("port", "0", "daemon port (required)");
  cli.add_flag("connections", "16", "parallel client connections");
  cli.add_flag("requests", "100000", "total requests to replay");
  cli.add_flag("pipeline", "8",
               "requests written per batch before reading the replies "
               "(1 = strict request/response lockstep)");
  cli.add_flag("timeout-ms", "5000", "per-read socket timeout");
  cli.add_flag("min-rate", "0",
               "exit 1 unless this many redirects/sec is sustained");
  cli.add_flag("servers", "50", "scenario: number of CDN servers");
  cli.add_flag("low", "50", "scenario: low-popularity sites");
  cli.add_flag("medium", "100", "scenario: medium-popularity sites");
  cli.add_flag("high", "50", "scenario: high-popularity sites");
  cli.add_flag("objects", "1000", "scenario: objects per site");
  cli.add_flag("seed", "2005", "scenario seed (must match the daemon)");
  cli.add_flag("stream-seed", "99", "request-stream seed");
  if (!cli.parse(argc, argv)) return 2;

  try {
    const std::uint16_t port =
        static_cast<std::uint16_t>(cli.get_int("port"));
    CDN_EXPECT(port != 0, "--port is required");
    const std::string host = cli.get_string("host");
    const std::size_t connections =
        static_cast<std::size_t>(cli.get_int("connections"));
    CDN_EXPECT(connections >= 1, "--connections must be at least 1");
    const std::uint64_t total_requests =
        static_cast<std::uint64_t>(cli.get_int("requests"));
    const std::size_t pipeline =
        static_cast<std::size_t>(cli.get_int("pipeline"));
    CDN_EXPECT(pipeline >= 1, "--pipeline must be at least 1");
    const int timeout_ms = static_cast<int>(cli.get_int("timeout-ms"));

    core::ScenarioConfig cfg;
    cfg.server_count = static_cast<std::size_t>(cli.get_int("servers"));
    cfg.classes = {
        {static_cast<std::size_t>(cli.get_int("low")), 1.0, "low"},
        {static_cast<std::size_t>(cli.get_int("medium")), 4.0, "medium"},
        {static_cast<std::size_t>(cli.get_int("high")), 16.0, "high"}};
    cfg.surge.objects_per_site =
        static_cast<std::size_t>(cli.get_int("objects"));
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    core::Scenario scenario(cfg);

    const std::uint64_t stream_seed =
        static_cast<std::uint64_t>(cli.get_int("stream-seed"));

    std::vector<WorkerResult> results(connections);
    std::vector<std::thread> workers;
    workers.reserve(connections);
    const auto wall_start = std::chrono::steady_clock::now();

    for (std::size_t w = 0; w < connections; ++w) {
      const std::uint64_t share =
          total_requests / connections +
          (w < total_requests % connections ? 1 : 0);
      workers.emplace_back([&, w, share] {
        WorkerResult& out = results[w];
        net::ConnectStart conn = net::start_connect(host, port);
        if (!conn.fd.valid()) {
          out.transport_failed = true;
          return;
        }
        // Blocking-style use of the non-blocking socket: write_all /
        // read_line poll internally.
        if (conn.in_progress) {
          // Wait for the connect to resolve (writability), then fail fast
          // on SO_ERROR instead of misattributing a refused connect to the
          // first batch's write or read.
          if (!net::wait_writable(conn.fd.get(), timeout_ms) ||
              net::finish_connect(conn.fd.get()) != 0) {
            out.transport_failed = true;
            return;
          }
        }
        workload::RequestStream stream(scenario.catalog(), scenario.demand(),
                                       stream_seed + w);
        out.latency_ns.reserve(share);
        std::uint64_t sent = 0;
        while (sent < share) {
          const std::size_t batch =
              static_cast<std::size_t>(std::min<std::uint64_t>(
                  pipeline, share - sent));
          std::string block;
          for (std::size_t b = 0; b < batch; ++b) {
            const workload::Request r = stream.next();
            redirectd::RedirectRequest req;
            req.client_server = r.server;
            req.site = r.site;
            req.object = r.rank;
            block += redirectd::format_request(req);
          }
          const auto t0 = std::chrono::steady_clock::now();
          if (!net::write_all(conn.fd.get(), block.data(), block.size(),
                              timeout_ms)) {
            out.transport_failed = true;
            return;
          }
          for (std::size_t b = 0; b < batch; ++b) {
            const auto line =
                net::read_line(conn.fd.get(), timeout_ms);
            if (!line.has_value()) {
              out.transport_failed = true;
              return;
            }
            const auto t1 = std::chrono::steady_clock::now();
            const std::uint64_t latency = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                     t0)
                    .count());
            out.latency_ns.push_back(latency);
            if (line->rfind("ERR", 0) == 0) {
              ++out.errors;
              continue;
            }
            const redirectd::RedirectAnswer answer =
                redirectd::parse_answer(*line);
            switch (answer.kind) {
              case redirectd::AnswerKind::kReplica:
                ++out.replica;
                out.replica_ns.push_back(latency);
                break;
              case redirectd::AnswerKind::kOrigin:
                ++out.origin;
                out.origin_ns.push_back(latency);
                break;
              case redirectd::AnswerKind::kUnavailable:
                ++out.unavailable;
                out.unavailable_ns.push_back(latency);
                break;
            }
          }
          sent += batch;
        }
      });
    }
    for (auto& t : workers) t.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    WorkerResult total;
    for (const auto& r : results) {
      total.replica += r.replica;
      total.origin += r.origin;
      total.unavailable += r.unavailable;
      total.errors += r.errors;
      total.transport_failed =
          total.transport_failed || r.transport_failed;
      total.latency_ns.insert(total.latency_ns.end(), r.latency_ns.begin(),
                              r.latency_ns.end());
      total.replica_ns.insert(total.replica_ns.end(), r.replica_ns.begin(),
                              r.replica_ns.end());
      total.origin_ns.insert(total.origin_ns.end(), r.origin_ns.begin(),
                             r.origin_ns.end());
      total.unavailable_ns.insert(total.unavailable_ns.end(),
                                  r.unavailable_ns.begin(),
                                  r.unavailable_ns.end());
    }
    std::sort(total.latency_ns.begin(), total.latency_ns.end());
    std::sort(total.replica_ns.begin(), total.replica_ns.end());
    std::sort(total.origin_ns.begin(), total.origin_ns.end());
    std::sort(total.unavailable_ns.begin(), total.unavailable_ns.end());
    const std::uint64_t answered = total.latency_ns.size();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(answered) / elapsed : 0.0;

    std::printf("requests      %llu\n",
                static_cast<unsigned long long>(answered));
    std::printf("elapsed_s     %.3f\n", elapsed);
    std::printf("redirects/s   %.0f\n", rate);
    std::printf("replica       %llu\n",
                static_cast<unsigned long long>(total.replica));
    std::printf("origin        %llu\n",
                static_cast<unsigned long long>(total.origin));
    std::printf("unavailable   %llu\n",
                static_cast<unsigned long long>(total.unavailable));
    std::printf("errors        %llu\n",
                static_cast<unsigned long long>(total.errors));
    std::printf("latency_p50_ms %.3f\n",
                percentile_ms(total.latency_ns, 0.50));
    std::printf("latency_p90_ms %.3f\n",
                percentile_ms(total.latency_ns, 0.90));
    std::printf("latency_p99_ms %.3f\n",
                percentile_ms(total.latency_ns, 0.99));
    std::printf("replica_p50_ms %.3f\n",
                percentile_ms(total.replica_ns, 0.50));
    std::printf("replica_p99_ms %.3f\n",
                percentile_ms(total.replica_ns, 0.99));
    std::printf("origin_p50_ms %.3f\n",
                percentile_ms(total.origin_ns, 0.50));
    std::printf("origin_p99_ms %.3f\n",
                percentile_ms(total.origin_ns, 0.99));
    std::printf("unavailable_p50_ms %.3f\n",
                percentile_ms(total.unavailable_ns, 0.50));
    std::printf("unavailable_p99_ms %.3f\n",
                percentile_ms(total.unavailable_ns, 0.99));

    if (total.transport_failed) {
      std::fprintf(stderr, "redirect_load: a connection failed mid-run\n");
      return 1;
    }
    const double min_rate = cli.get_double("min-rate");
    if (min_rate > 0.0 && rate < min_rate) {
      std::fprintf(stderr,
                   "redirect_load: sustained %.0f redirects/s, below the "
                   "required %.0f\n",
                   rate, min_rate);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "redirect_load: %s\n", e.what());
    return 1;
  }
}
