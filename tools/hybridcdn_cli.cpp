// hybridcdn_cli — run a full scenario comparison from the command line.
//
// Examples:
//   hybridcdn_cli                                    # paper defaults
//   hybridcdn_cli --storage 0.10 --lambda 0.1
//   hybridcdn_cli --mechanisms hybrid,caching,cache20 --requests 1000000
//   hybridcdn_cli --servers 16 --low 12 --medium 24 --high 12 --csv
//   hybridcdn_cli --theta 0.8 --policy lfu --cdf
//   hybridcdn_cli --metrics-out m.json --trace-out t.csv --trace-sample 0.01

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include "src/core/hybridcdn.h"
#include "src/obs/registry.h"
#include "src/obs/run_manifest.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/recover/checkpoint.h"
#include "src/sim/sim_checkpoint.h"
#include "src/util/cli.h"

namespace {

using namespace cdn;

/// Graceful-shutdown flag set by SIGINT/SIGTERM (see docs/RECOVERY.md).
/// The engines poll it at their probe points, flush a final checkpoint and
/// throw recover::Interrupted; main() exits with kInterruptedExitCode (75).
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

/// Parses "hybrid,caching,cache20,..." into mechanism specs.
std::vector<core::MechanismSpec> parse_mechanisms(
    const std::string& csv, std::uint64_t seed, obs::Registry* metrics,
    obs::SpanTracer* spans, placement::PlacementModel placement_model) {
  std::vector<core::MechanismSpec> specs;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "replication") {
      specs.push_back(
          core::replication_mechanism(metrics, spans, placement_model));
    } else if (item == "caching") {
      specs.push_back(core::caching_mechanism());
    } else if (item == "hybrid") {
      specs.push_back(core::hybrid_mechanism(metrics, spans, placement_model));
    } else if (item == "popularity") {
      specs.push_back(core::popularity_mechanism());
    } else if (item == "random") {
      specs.push_back(core::random_mechanism(seed));
    } else if (item.rfind("cache", 0) == 0) {
      const double pct = std::atof(item.c_str() + 5);
      CDN_EXPECT(pct > 0.0 && pct < 100.0,
                 "cacheNN must carry a percentage in (0, 100)");
      specs.push_back(core::fixed_split_mechanism(pct / 100.0));
    } else {
      CDN_EXPECT(false, "unknown mechanism: " + item);
    }
  }
  CDN_EXPECT(!specs.empty(), "no mechanisms requested");
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "hybridcdn_cli — compare CDN content-delivery mechanisms "
      "(Bakiras & Loukopoulos, IPDPS 2005)");
  cli.add_flag("servers", "50", "number of CDN servers (N)");
  cli.add_flag("low", "50", "low-popularity sites");
  cli.add_flag("medium", "100", "medium-popularity sites");
  cli.add_flag("high", "50", "high-popularity sites");
  cli.add_flag("objects", "1000", "objects per site (L)");
  cli.add_flag("theta", "1.0", "Zipf exponent of object popularity");
  cli.add_flag("storage", "0.05",
               "per-server storage as a fraction of total site bytes");
  cli.add_flag("lambda", "0.0", "uncacheable/stale request fraction");
  cli.add_flag("mechanisms", "replication,caching,hybrid",
               "comma list: replication|caching|hybrid|popularity|random|"
               "cacheNN (fixed split with NN% cache)");
  cli.add_flag("requests", "5000000", "simulated requests");
  cli.add_flag("policy", "lru",
               "cache policy: lru|fifo|lfu|clock|delayed-lru");
  cli.add_flag("seed", "2005", "scenario seed");
  cli.add_flag("sim-seed", "99", "request-stream seed");
  cli.add_flag("cdf", "false", "also print the response-time CDF table");
  cli.add_flag("csv", "false", "emit the summary as CSV instead of a table");
  cli.add_flag("metrics-out", "",
               "write the metrics registry to this JSON file");
  cli.add_flag("spans-out", "",
               "write phase/iteration spans as Chrome trace-event JSON "
               "(load in https://ui.perfetto.dev; docs/OBSERVABILITY.md)");
  cli.add_flag("manifest-out", "",
               "write the run-provenance manifest (seed, fingerprints, "
               "build info, resource usage) to this JSON file");
  cli.add_flag("trace-out", "",
               "write the sampled per-request event trace to this CSV file");
  cli.add_flag("trace-sample", "0.01",
               "trace sampling rate in [0, 1] (1 = every measured request)");
  cli.add_flag("trace-max", "1000000",
               "cap on recorded trace events (excess is counted as dropped)");
  cli.add_flag("windows", "50",
               "per-window time-series buckets in the metrics output");
  cli.add_flag("engine", "event",
               "evaluation engine: event (per-request simulation) | flow "
               "(analytical steady-state fast path, milliseconds instead of "
               "seconds; docs/PERFORMANCE.md)");
  cli.add_flag("hit-model", "empirical",
               "hit-ratio model tier of the flow engine: "
               "empirical|closed-form|che (ignored by --engine=event)");
  cli.add_flag("placement-model", "exact",
               "model tier pricing placement candidates during the hybrid/"
               "replication placement stage: exact|closed-form|che "
               "(docs/PERFORMANCE.md)");
  cli.add_flag("threads", "1",
               "simulation threads: 1 = sequential reference engine, "
               "0 = all hardware threads, N = parallel sharded engine");
  cli.add_flag("shards", "0",
               "first-hop shards of the parallel engine (0 = auto); the "
               "parallel result is deterministic in (sim-seed, shards)");
  cli.add_flag("progress", "false",
               "print simulation progress to stderr");
  cli.add_flag("fault-schedule", "",
               "fault schedule file (docs/FAULTS.md); overrides --mtbf");
  cli.add_flag("mtbf", "0",
               "mean requests between server failures (0 = no random faults)");
  cli.add_flag("mttr", "0",
               "mean requests to repair a down server (0 = mtbf / 10)");
  cli.add_flag("fault-seed", "7", "seed of the random fault schedule");
  cli.add_flag("slo-ms", "0",
               "response-time SLO in ms; failed or slower requests count as "
               "violations (0 = off)");
  cli.add_flag("checkpoint-out", "",
               "write crash-safe checkpoints to this file; also enables "
               "graceful SIGINT/SIGTERM shutdown (docs/RECOVERY.md)");
  cli.add_flag("checkpoint-every-requests", "0",
               "checkpoint cadence in requests (requires --checkpoint-out)");
  cli.add_flag("checkpoint-every-seconds", "0",
               "checkpoint cadence in wall-clock seconds (requires "
               "--checkpoint-out)");
  cli.add_flag("resume", "",
               "resume from this checkpoint file; the configuration must "
               "match the one that wrote it exactly");
  cli.add_flag("report-digest", "false",
               "print each mechanism's report digest (byte-identity id)");

  const auto parse_start = std::chrono::steady_clock::now();
  if (!cli.parse(argc, argv)) return 1;
  const auto parse_end = std::chrono::steady_clock::now();

  try {
    const std::string spans_out = cli.get_string("spans-out");
    std::optional<obs::SpanTracer> tracer;
    if (!spans_out.empty()) tracer.emplace();
    obs::SpanTracer* const spans = tracer ? &*tracer : nullptr;
    if (spans != nullptr) {
      spans->set_thread_name("main");
      spans->instant("cli/parse", "cli", "ms",
                     std::chrono::duration<double, std::milli>(parse_end -
                                                               parse_start)
                         .count());
    }

    core::ScenarioConfig cfg;
    cfg.server_count = static_cast<std::size_t>(cli.get_int("servers"));
    cfg.classes = {
        {static_cast<std::size_t>(cli.get_int("low")), 1.0, "low"},
        {static_cast<std::size_t>(cli.get_int("medium")), 4.0, "medium"},
        {static_cast<std::size_t>(cli.get_int("high")), 16.0, "high"}};
    cfg.surge.objects_per_site =
        static_cast<std::size_t>(cli.get_int("objects"));
    cfg.surge.zipf_theta = cli.get_double("theta");
    cfg.storage_fraction = cli.get_double("storage");
    cfg.uncacheable_fraction = cli.get_double("lambda");
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    obs::ScopedSpan build_span(spans, "cli/build_scenario", "cli");
    core::Scenario scenario(cfg);
    build_span.stop();

    sim::SimulationConfig sim;
    sim.total_requests = static_cast<std::uint64_t>(cli.get_int("requests"));
    sim.policy = cache::parse_policy(cli.get_string("policy"));
    sim.seed = static_cast<std::uint64_t>(cli.get_int("sim-seed"));
    sim.metrics_windows = static_cast<std::size_t>(cli.get_int("windows"));
    sim.threads = static_cast<std::size_t>(cli.get_int("threads"));
    sim.shards = static_cast<std::size_t>(cli.get_int("shards"));
    const std::string engine_name = cli.get_string("engine");
    if (engine_name == "flow") {
      sim.engine = sim::SimEngine::kFlow;
    } else {
      CDN_EXPECT(engine_name == "event",
                 "unknown --engine: " + engine_name + " (expected event|flow)");
    }
    const std::string hit_model_name = cli.get_string("hit-model");
    if (hit_model_name == "closed-form") {
      sim.hit_model = sim::HitModel::kClosedForm;
    } else if (hit_model_name == "che") {
      sim.hit_model = sim::HitModel::kChe;
    } else {
      CDN_EXPECT(hit_model_name == "empirical",
                 "unknown --hit-model: " + hit_model_name +
                     " (expected empirical|closed-form|che)");
    }
    const std::string placement_model_name =
        cli.get_string("placement-model");
    const placement::PlacementModel placement_model =
        placement::parse_placement_model(placement_model_name);
    const std::string tier_note =
        core::model_tier_mismatch_note(hit_model_name, placement_model_name);
    if (!tier_note.empty()) std::cerr << tier_note << '\n';
    if (cli.get_bool("progress")) {
      sim.progress_every = std::max<std::uint64_t>(1, sim.total_requests / 20);
      sim.progress = [](const sim::SimulationProgress& p) {
        std::ostringstream line;
        line << "sim: " << p.completed << "/" << p.total << " requests ("
             << static_cast<int>(100.0 * static_cast<double>(p.completed) /
                                 static_cast<double>(p.total))
             << "%)";
        if (p.requests_per_sec > 0.0) {
          line << ", " << static_cast<std::uint64_t>(p.requests_per_sec)
               << " req/s, eta " << util::format_double(p.eta_seconds, 1)
               << "s";
        }
        if (p.hit_ratio_known) {
          line << ", hit_ratio=" << std::to_string(p.hit_ratio);
        } else if (p.warming_up) {
          line << ", warming up";
        }
        if (p.checkpoints_written > 0) {
          line << ", ckpt@" << p.last_checkpoint_request;
        }
        std::cerr << line.str() << '\n';
      };
    }
    sim.slo_ms = cli.get_double("slo-ms");

    fault::FaultSchedule schedule;
    const std::string fault_file = cli.get_string("fault-schedule");
    const double mtbf = cli.get_double("mtbf");
    if (!fault_file.empty()) {
      schedule = fault::FaultSchedule::load(fault_file);
    } else if (mtbf > 0.0) {
      fault::RandomFaultParams fp;
      fp.mtbf_requests = mtbf;
      const double mttr = cli.get_double("mttr");
      fp.mttr_requests = mttr > 0.0 ? mttr : mtbf / 10.0;
      fp.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed"));
      schedule =
          fault::FaultSchedule::random(scenario.system().server_count(),
                                       scenario.system().site_count(),
                                       sim.total_requests, fp);
    }
    if (!schedule.empty()) {
      schedule.validate(scenario.system().server_count(),
                        scenario.system().site_count());
      sim.faults = &schedule;
    }

    // --- Crash safety (docs/RECOVERY.md) ---
    sim.checkpoint_path = cli.get_string("checkpoint-out");
    CDN_EXPECT(!cli.is_set("checkpoint-every-requests") ||
                   cli.get_int("checkpoint-every-requests") > 0,
               "--checkpoint-every-requests must be a positive request "
               "count; drop the flag to disable the request cadence");
    sim.checkpoint_every_requests =
        static_cast<std::uint64_t>(cli.get_int("checkpoint-every-requests"));
    sim.checkpoint_every_seconds = cli.get_double("checkpoint-every-seconds");
    sim.resume_path = cli.get_string("resume");
    CDN_EXPECT(sim.checkpoint_path.empty() ||
                   sim.checkpoint_path != sim.resume_path,
               "--checkpoint-out and --resume must name different files "
               "(a failed resume would otherwise overwrite its own source)");
    const bool recovery =
        !sim.checkpoint_path.empty() || !sim.resume_path.empty();
    if (recovery) {
      // A checkpoint captures ONE simulation's state, so restrict the run
      // to a single mechanism — resume could not tell mechanisms apart.
      CDN_EXPECT(cli.get_string("mechanisms").find(',') == std::string::npos,
                 "--checkpoint-out/--resume require exactly one mechanism "
                 "(got --mechanisms " + cli.get_string("mechanisms") + ")");
    }
    if (!sim.checkpoint_path.empty()) {
      std::signal(SIGINT, handle_stop_signal);
      std::signal(SIGTERM, handle_stop_signal);
      sim.stop = &g_stop;
    }
    sim.validate();

    const std::string metrics_out = cli.get_string("metrics-out");
    const std::string trace_out = cli.get_string("trace-out");
    const std::string manifest_out = cli.get_string("manifest-out");
    obs::Registry registry;
    obs::Registry* const metrics = metrics_out.empty() ? nullptr : &registry;
    std::optional<obs::TraceSink> sink;
    if (!trace_out.empty()) {
      sink.emplace(cli.get_double("trace-sample"), sim.seed,
                   static_cast<std::size_t>(cli.get_int("trace-max")));
    }

    obs::RunManifest manifest = obs::make_run_manifest("hybridcdn_cli");
    manifest.seed = sim.seed;
    manifest.threads = sim.threads;
    manifest.shards = sim.shards;

    const auto flush_exports = [&] {
      obs::ScopedSpan export_span(spans, "cli/export", "cli");
      manifest.finalize();
      if (metrics != nullptr) {
        obs::write_json_file(registry, metrics_out, &manifest);
        std::cerr << "metrics: " << metrics_out << " ("
                  << registry.metric_count() << " metrics)\n";
      }
      if (sink) {
        sink->write_csv(trace_out);
        std::cerr << "trace: " << trace_out << " (" << sink->recorded()
                  << " events, " << sink->dropped() << " dropped)\n";
      }
      if (!manifest_out.empty()) {
        manifest.write_json_file(manifest_out);
        std::cerr << "manifest: " << manifest_out << '\n';
      }
      export_span.stop();
      if (spans != nullptr) {
        spans->write_json_file(spans_out);
        std::cerr << "spans: " << spans_out << " (" << spans->recorded()
                  << " events, " << spans->dropped() << " dropped)\n";
      }
    };

    std::vector<core::MechanismRun> runs;
    try {
      runs = core::run_mechanisms(
          scenario,
          parse_mechanisms(cli.get_string("mechanisms"), cfg.seed, metrics,
                           spans, placement_model),
          sim, metrics, sink ? &*sink : nullptr, spans);
    } catch (const recover::Interrupted& e) {
      // Graceful shutdown: the engine already flushed its checkpoint; flush
      // the observability exports too and exit with the documented code so
      // wrappers know the run is resumable, not failed.
      flush_exports();
      std::cerr << "interrupted: " << e.what() << "\n"
                << "resume with --resume "
                << (e.checkpoint_path().empty() ? "<checkpoint>"
                                                : e.checkpoint_path())
                << '\n';
      return recover::kInterruptedExitCode;
    }

    // Provenance: the same fingerprint sections checkpoint/resume validates
    // against, so a manifest identifies a run as precisely as a checkpoint
    // does.  The placement section differs per mechanism; the rest are
    // shared (add_fingerprint dedupes identical sections).
    const auto engine_kind = sim.threads == 1
                                 ? sim::detail::EngineKind::kSequential
                                 : sim::detail::EngineKind::kParallel;
    for (const auto& run : runs) {
      for (const auto& section : sim::detail::checkpoint_fingerprint(
               scenario.system(), run.placement, sim, engine_kind,
               sim.shards)) {
        if (section.first == "placement") {
          manifest.add_fingerprint("placement/" + run.name, section.second);
        } else {
          manifest.add_fingerprint(section.first, section.second);
        }
      }
    }

    const auto table = core::summary_table(runs);
    std::cout << (cli.get_bool("csv") ? table.csv() : table.str());
    if (sim.faults != nullptr || sim.slo_ms > 0.0) {
      util::TextTable fault_table({"mechanism", "availability", "failed",
                                   "failover", "retries", "cold_restarts",
                                   "slo_violation"});
      for (const auto& run : runs) {
        const auto& r = run.report;
        fault_table.add_row(
            {run.name, util::format_double(r.availability, 6),
             std::to_string(r.failed_requests),
             std::to_string(r.failover_requests),
             std::to_string(r.retry_attempts),
             std::to_string(r.cold_restarts),
             util::format_double(r.slo_violation_fraction, 6)});
      }
      std::cout << "\nDegraded-mode report:\n"
                << (cli.get_bool("csv") ? fault_table.csv()
                                        : fault_table.str());
    }
    if (cli.get_bool("cdf")) {
      std::cout << "\nResponse-time CDF:\n" << core::cdf_table(runs);
    }
    if (cli.get_bool("report-digest")) {
      for (const auto& run : runs) {
        std::cout << "digest " << run.name << " " << std::hex
                  << std::setfill('0') << std::setw(16)
                  << sim::report_digest(run.report) << std::dec << '\n';
      }
    }
    flush_exports();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
