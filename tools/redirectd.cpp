// redirectd — the live redirector daemon (docs/REDIRECTOR.md).
//
// Builds a scenario + placement, binds a TCP listener and answers
// `GET <client_server> <site> <object>` requests with the best live
// replica, while an optional fault schedule plays out on the wall clock
// and (with --endpoints) real connection races pick the winner.
//
// Examples:
//   redirectd --port 9700                          # paper scenario, model mode
//   redirectd --servers 8 --low 4 --medium 8 --high 4 --port 0
//   redirectd --faults sched.txt --fault-rate 1000 --metrics-out m.json
//   redirectd --endpoints endpoints.txt            # probe + race real sockets
//   redirectd --control-port 0                     # + RELOAD/STATUS/DRAIN
//   redirectd --placement plan.txt                 # serve a saved placement
//   redirectd --dump-placement plan.txt            # save the computed one
//
// Prints exactly one line `LISTENING <port>` on stdout once the socket is
// bound (tests and redirect_load wait for it) — plus `CONTROL <port>` when
// the control socket is enabled — then serves until SIGINT/SIGTERM, drains
// in-flight requests and exits 0.  SIGHUP re-reads --placement and
// --endpoints through the validate-then-swap reload pipeline.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>

#include "src/core/hybridcdn.h"
#include "src/fault/wall_clock.h"
#include "src/obs/registry.h"
#include "src/obs/run_manifest.h"
#include "src/obs/span.h"
#include "src/placement/placement_io.h"
#include "src/redirectd/daemon.h"
#include "src/util/cli.h"

namespace {

using namespace cdn;

redirectd::RedirectorDaemon* g_daemon = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

extern "C" void handle_reload_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_reload();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "redirectd — live replica-redirector daemon over the hybrid "
      "placement (see docs/REDIRECTOR.md)");
  cli.add_flag("host", "127.0.0.1", "listen address");
  cli.add_flag("port", "0", "listen port (0 = ephemeral, printed on stdout)");
  cli.add_flag("servers", "50", "number of CDN servers (N)");
  cli.add_flag("low", "50", "low-popularity sites");
  cli.add_flag("medium", "100", "medium-popularity sites");
  cli.add_flag("high", "50", "high-popularity sites");
  cli.add_flag("objects", "1000", "objects per site (L)");
  cli.add_flag("storage", "0.05",
               "per-server storage as a fraction of total site bytes");
  cli.add_flag("seed", "2005", "scenario seed");
  cli.add_flag("mechanism", "hybrid",
               "placement mechanism: hybrid|replication|caching");
  cli.add_flag("top-k", "3", "replica candidates raced per request");
  cli.add_flag("stagger-ms", "25", "race stagger between candidates");
  cli.add_flag("attempt-timeout-ms", "150",
               "per-connection-attempt timeout");
  cli.add_flag("deadline-ms", "1000", "overall per-request race deadline");
  cli.add_flag("retries", "2", "retry rounds after the first");
  cli.add_flag("backoff-base-ms", "20", "initial retry backoff");
  cli.add_flag("backoff-cap-ms", "500", "maximum retry backoff");
  cli.add_flag("max-inflight", "256",
               "in-flight race limit before requests are shed");
  cli.add_flag("drain-timeout-ms", "2000",
               "grace period for in-flight requests on shutdown");
  cli.add_flag("endpoints", "",
               "endpoint map file (replica/origin host:port lines); "
               "enables health probing and connection racing");
  cli.add_flag("placement", "",
               "serve a saved placement file instead of computing one "
               "(also the file SIGHUP re-reads)");
  cli.add_flag("dump-placement", "",
               "write the serving placement to this file at startup");
  cli.add_flag("control-port", "",
               "enable the RELOAD/STATUS/DRAIN control socket on this "
               "port (0 = ephemeral, printed as CONTROL <port>)");
  cli.add_flag("control-host", "127.0.0.1", "control socket address");
  cli.add_flag("no-adaptive", "false",
               "disable EWMA latency tracking and outlier ejection");
  cli.add_flag("probe-interval-ms", "250", "health probe sweep interval");
  cli.add_flag("probe-timeout-ms", "100", "health probe timeout");
  cli.add_flag("faults", "", "fault schedule file (request-time units)");
  cli.add_flag("fault-rate", "1000",
               "requests/second mapping wall time onto the fault "
               "schedule's request-time axis");
  cli.add_flag("metrics-out", "",
               "write the metrics registry to this JSON file on exit");
  cli.add_flag("spans-out", "",
               "write spans as Chrome trace-event JSON on exit");
  if (!cli.parse(argc, argv)) return 2;

  try {
    core::ScenarioConfig cfg;
    cfg.server_count = static_cast<std::size_t>(cli.get_int("servers"));
    cfg.classes = {
        {static_cast<std::size_t>(cli.get_int("low")), 1.0, "low"},
        {static_cast<std::size_t>(cli.get_int("medium")), 4.0, "medium"},
        {static_cast<std::size_t>(cli.get_int("high")), 16.0, "high"}};
    cfg.surge.objects_per_site =
        static_cast<std::size_t>(cli.get_int("objects"));
    cfg.storage_fraction = cli.get_double("storage");
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    core::Scenario scenario(cfg);

    obs::Registry metrics;
    obs::SpanTracer spans;
    const bool want_metrics = !cli.get_string("metrics-out").empty();
    const bool want_spans = !cli.get_string("spans-out").empty();

    const std::string mechanism = cli.get_string("mechanism");
    core::MechanismSpec spec;
    if (mechanism == "hybrid") {
      spec = core::hybrid_mechanism();
    } else if (mechanism == "replication") {
      spec = core::replication_mechanism();
    } else if (mechanism == "caching") {
      spec = core::caching_mechanism();
    } else {
      CDN_EXPECT(false, "unknown mechanism: " + mechanism);
    }
    const std::string placement_file = cli.get_string("placement");
    placement::PlacementResult placement =
        placement_file.empty()
            ? spec.build(scenario.system())
            : placement::load_placement_result(placement_file,
                                               scenario.system());
    const std::string dump_file = cli.get_string("dump-placement");
    if (!dump_file.empty()) {
      placement::save_placement(placement.placement, dump_file);
    }

    std::optional<fault::WallClockTimeline> timeline;
    fault::FaultSchedule schedule;
    const std::string fault_file = cli.get_string("faults");
    if (!fault_file.empty()) {
      schedule = fault::FaultSchedule::load(fault_file);
      schedule.validate(scenario.system().server_count(),
                        scenario.system().site_count());
      timeline.emplace(schedule, scenario.system().server_count(),
                       scenario.system().site_count(),
                       cli.get_double("fault-rate"));
    }

    redirectd::EndpointMap endpoints;
    const std::string endpoints_file = cli.get_string("endpoints");
    if (!endpoints_file.empty()) {
      endpoints = redirectd::EndpointMap::load(endpoints_file);
    }

    redirectd::DaemonConfig dc;
    dc.host = cli.get_string("host");
    dc.port = static_cast<std::uint16_t>(cli.get_int("port"));
    dc.top_k = static_cast<std::size_t>(cli.get_int("top-k"));
    dc.race.stagger = std::chrono::milliseconds(cli.get_int("stagger-ms"));
    dc.race.attempt_timeout =
        std::chrono::milliseconds(cli.get_int("attempt-timeout-ms"));
    dc.race.overall_deadline =
        std::chrono::milliseconds(cli.get_int("deadline-ms"));
    dc.race.max_retry_rounds =
        static_cast<std::uint32_t>(cli.get_int("retries"));
    dc.race.backoff.base =
        std::chrono::milliseconds(cli.get_int("backoff-base-ms"));
    dc.race.backoff.cap =
        std::chrono::milliseconds(cli.get_int("backoff-cap-ms"));
    dc.health.probe_interval =
        std::chrono::milliseconds(cli.get_int("probe-interval-ms"));
    dc.health.probe_timeout =
        std::chrono::milliseconds(cli.get_int("probe-timeout-ms"));
    dc.max_inflight_races =
        static_cast<std::size_t>(cli.get_int("max-inflight"));
    dc.drain_timeout =
        std::chrono::milliseconds(cli.get_int("drain-timeout-ms"));
    dc.seed = cfg.seed;
    dc.adaptive = !cli.get_bool("no-adaptive");
    const std::string control_port = cli.get_string("control-port");
    if (!control_port.empty()) {
      dc.control = true;
      dc.control_host = cli.get_string("control-host");
      dc.control_port =
          static_cast<std::uint16_t>(std::stoul(control_port));
    }
    dc.reload_placement_path = placement_file;
    dc.reload_endpoints_path = endpoints_file;
    dc.system = &scenario.system();
    dc.placement = &placement;
    dc.endpoints = endpoints.empty() ? nullptr : &endpoints;
    dc.timeline = timeline.has_value() ? &*timeline : nullptr;
    dc.metrics = want_metrics ? &metrics : nullptr;
    dc.spans = want_spans ? &spans : nullptr;

    redirectd::RedirectorDaemon daemon(dc);
    daemon.start();
    g_daemon = &daemon;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGHUP, handle_reload_signal);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("LISTENING %u\n", static_cast<unsigned>(daemon.port()));
    if (dc.control) {
      std::printf("CONTROL %u\n",
                  static_cast<unsigned>(daemon.control_port()));
    }
    std::fflush(stdout);

    const std::uint64_t served = daemon.run();
    g_daemon = nullptr;

    if (want_metrics) {
      obs::RunManifest manifest = obs::make_run_manifest("redirectd");
      obs::write_json_file(metrics, cli.get_string("metrics-out"),
                           &manifest);
    }
    if (want_spans) {
      spans.write_json_file(cli.get_string("spans-out"));
    }

    const auto& st = daemon.stats();
    std::fprintf(stderr,
                 "redirectd: served %llu requests "
                 "(replica %llu, origin %llu, unavailable %llu, "
                 "shed %llu, parse errors %llu)\n",
                 static_cast<unsigned long long>(served),
                 static_cast<unsigned long long>(st.replica_answers),
                 static_cast<unsigned long long>(st.origin_answers),
                 static_cast<unsigned long long>(
                     st.unavailable_no_live_copy + st.unavailable_shed +
                     st.unavailable_deadline),
                 static_cast<unsigned long long>(st.unavailable_shed),
                 static_cast<unsigned long long>(st.parse_errors));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "redirectd: %s\n", e.what());
    return 1;
  }
}
